//! Slot-loop throughput benchmark: dense polling vs event-driven parking.
//!
//! Runs a handful of large-window experiment-style workloads (the shapes
//! of E9, E10, and E17) under both [`Scheduling`] modes, cross-checks that
//! the reports agree (the equivalence the wake-hint contract promises),
//! and writes before/after slots-per-second plus speedups to
//! `BENCH_slotloop.json` at the workspace root.
//!
//! One additional row (`mode: "cohort"`) measures [`Fidelity::Cohort`] on
//! a 10⁵-job UNIFORM population. Cohort mode is statistically — not
//! bit- — equivalent to the exact path, so that row compares against the
//! exact engine under *event* scheduling (its `dense_slots_per_sec` field
//! holds the exact-fidelity event-mode rate) and cross-checks the success
//! fractions instead of the full reports.
//!
//! Two `mode: "vectorized"` rows measure [`Fidelity::Vectorized`]
//! (DESIGN.md §3f) against the exact engine on the same 10⁵-job UNIFORM
//! population and on a 10⁵-lane dense ALOHA population. Vectorized is
//! *bit-identical* to exact, so these rows assert full report equality
//! (outcomes, counts, accesses, slots run) before reporting the speedup;
//! as with the cohort row, `dense_slots_per_sec` holds the exact rate and
//! `event_slots_per_sec` the kernel rate.
//!
//! Two further `mode: "cohort"` rows measure the aggregate class profiles
//! (DESIGN.md §3g) on ALIGNED and PUNCTUAL batches at n = 10⁵ — exact vs
//! cohort fidelity, event scheduling on both sides, with a hard ≥ 5×
//! speedup floor — and two `mode: "cohort-only"` rows record single-rep
//! throughput plus peak RSS at n = 10⁶, where no exact baseline is
//! affordable (exact-side fields are zeroed there).
//!
//! Timing uses the engine's own `engine_nanos` (slot-loop wall time), so
//! setup and report assembly are excluded. Each configuration runs
//! `REPS` times per mode and the fastest rep is kept — standard practice
//! for throughput floors on a shared machine.

use dcr_baselines::{BinaryExponentialBackoff, FixedProbability, Sawtooth};
use dcr_core::punctual::PunctualParams;
use dcr_core::uniform::Uniform;
use dcr_core::{AlignedParams, AlignedProtocol, PunctualProtocol};
use dcr_sim::engine::{Engine, EngineConfig, Fidelity, Protocol, Scheduling};
use dcr_sim::job::JobSpec;
use dcr_sim::metrics::SimReport;
use dcr_workloads::generators::poisson;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

const REPS: usize = 3;
const SEED: u64 = 20200715; // SPAA'20 conference date

#[derive(Serialize)]
struct Row {
    workload: String,
    jobs: usize,
    slots_run: u64,
    /// `"exact"` rows compare dense vs event scheduling; the `"cohort"`
    /// and `"vectorized"` rows compare exact vs the named fidelity (same
    /// scheduling on both sides), with the exact rate in
    /// `dense_slots_per_sec` and the fast-path rate in
    /// `event_slots_per_sec`.
    mode: &'static str,
    dense_slots_per_sec: f64,
    event_slots_per_sec: f64,
    speedup: f64,
    // Event-driven scheduler counters (SimReport::sched_stats): attribute
    // the speedup — how many slots were fast-forwarded and how hard the
    // wake queue worked to earn it.
    gap_skips: u64,
    gap_slots: u64,
    skipped_fraction: f64,
    parks: u64,
    peak_parked: u64,
    /// Peak resident set (`VmHWM`) sampled right after this row's runs;
    /// 0 on non-Linux hosts. The kernel counter is a process-lifetime
    /// high-water mark, so it is **reset before each row** (writing `5`
    /// to `/proc/self/clear_refs`) to make the number attributable to
    /// the row alone; see `rss_scope` for whether the reset took.
    peak_rss_bytes: u64,
    /// `"row"` when the peak-RSS counter was successfully reset before
    /// this row's runs (the value is this row's own peak), or
    /// `"process_peak"` when the reset is unavailable (the value is the
    /// process-lifetime high-water mark up to this row, i.e. inflated by
    /// every earlier row).
    rss_scope: &'static str,
}

/// Reset the kernel's peak-RSS high-water mark to the *current* RSS by
/// writing `5` to `/proc/self/clear_refs` (Linux ≥ 4.0). Returns whether
/// the reset took; on failure (non-Linux, restricted procfs) callers
/// fall back to reporting the process-lifetime peak, labeled as such.
fn reset_peak_rss() -> bool {
    cfg!(target_os = "linux") && std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Per-row RSS measurement: [`reset_peak_rss`] before the row's runs,
/// sample `VmHWM` after. `finish()` yields the sampled bytes plus the
/// `rss_scope` label recording whether the reset succeeded.
struct RssProbe {
    scoped: bool,
}

impl RssProbe {
    fn start() -> Self {
        Self {
            scoped: reset_peak_rss(),
        }
    }

    fn finish(self) -> (u64, &'static str) {
        let scope = if self.scoped { "row" } else { "process_peak" };
        (peak_rss_bytes(), scope)
    }
}

/// Read the process peak resident set from `/proc/self/status` (`VmHWM`,
/// reported in kB). Returns 0 when the file or field is unavailable
/// (non-Linux hosts).
fn peak_rss_bytes() -> u64 {
    if cfg!(target_os = "linux") {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

#[derive(Serialize)]
struct Bench {
    generated_by: &'static str,
    seed: u64,
    reps: usize,
    rows: Vec<Row>,
}

type ProtocolFactory = Box<dyn Fn() -> Box<dyn Protocol>>;

struct Workload {
    name: String,
    jobs: Vec<(JobSpec, ProtocolFactory)>,
    /// Base engine config (scheduling/fidelity overridden per run);
    /// ALIGNED workloads need the shared-clock config.
    config: EngineConfig,
}

fn punctual_batch(n: u32, window: u64) -> Workload {
    let params = PunctualParams::laptop();
    Workload {
        name: format!("e9-punctual-batch n={n} w=2^{}", window.trailing_zeros()),
        jobs: (0..n)
            .map(|i| {
                let spec = JobSpec::new(i, 0, window);
                let f: ProtocolFactory = Box::new(move || Box::new(PunctualProtocol::new(params)));
                (spec, f)
            })
            .collect(),
        config: EngineConfig::default(),
    }
}

fn poisson_specs(rate: f64, horizon: u64, windows: &[u64]) -> Vec<JobSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    poisson(rate, horizon, windows, &mut rng).jobs
}

fn poisson_punctual(rate: f64, horizon: u64) -> Workload {
    let params = PunctualParams::laptop();
    let specs = poisson_specs(rate, horizon, &[1 << 12, 1 << 14]);
    Workload {
        name: format!(
            "e10-punctual-poisson rate={rate} horizon=2^{}",
            horizon.trailing_zeros()
        ),
        jobs: specs
            .into_iter()
            .map(|spec| {
                let f: ProtocolFactory = Box::new(move || Box::new(PunctualProtocol::new(params)));
                (spec, f)
            })
            .collect(),
        config: EngineConfig::default(),
    }
}

fn poisson_uniform(rate: f64, horizon: u64) -> Workload {
    let specs = poisson_specs(rate, horizon, &[1 << 14, 1 << 16]);
    Workload {
        name: format!(
            "e10-uniform-poisson rate={rate} horizon=2^{}",
            horizon.trailing_zeros()
        ),
        jobs: specs
            .into_iter()
            .map(|spec| {
                let f: ProtocolFactory = Box::new(|| Box::new(Uniform::single()));
                (spec, f)
            })
            .collect(),
        config: EngineConfig::default(),
    }
}

fn backoff_mix(n: u32, window: u64) -> Workload {
    Workload {
        name: format!("e17-backoff-mix n={n} w=2^{}", window.trailing_zeros()),
        jobs: (0..n)
            .map(|i| {
                let release = u64::from(i) * 97 % (window / 4);
                let spec = JobSpec::new(i, release, release + window);
                let f: ProtocolFactory = if i % 2 == 0 {
                    Box::new(|| Box::new(Sawtooth::new()))
                } else {
                    Box::new(|| Box::new(BinaryExponentialBackoff::new()))
                };
                (spec, f)
            })
            .collect(),
        config: EngineConfig::default(),
    }
}

fn run_mode(w: &Workload, scheduling: Scheduling, fidelity: Fidelity) -> SimReport {
    let config = EngineConfig {
        scheduling,
        fidelity,
        ..w.config.clone()
    };
    let mut engine = Engine::new(config, SEED);
    for (spec, factory) in &w.jobs {
        engine.add_job(*spec, factory());
    }
    engine.run()
}

/// Fastest slots/sec over `REPS` runs; also returns the last report for
/// the cross-check.
fn best_rate(w: &Workload, scheduling: Scheduling, fidelity: Fidelity) -> (f64, SimReport) {
    best_rate_n(w, scheduling, fidelity, REPS)
}

/// Like [`best_rate`] but with an explicit rep count — the slow exact
/// baselines of the aggregate rows run once to keep the bench's wall
/// time sane.
fn best_rate_n(
    w: &Workload,
    scheduling: Scheduling,
    fidelity: Fidelity,
    reps: usize,
) -> (f64, SimReport) {
    let mut best = 0.0f64;
    let mut last = None;
    for _ in 0..reps {
        let report = run_mode(w, scheduling, fidelity);
        let secs = report.engine_nanos as f64 / 1e9;
        if secs > 0.0 {
            best = best.max(report.slots_run as f64 / secs);
        }
        last = Some(report);
    }
    (best, last.expect("REPS >= 1"))
}

/// The cohort showcase: a population far beyond what per-job simulation
/// sweeps comfortably, shaped like experiment E2's UNIFORM batches.
fn uniform_cohort(n: u32, window: u64) -> Workload {
    Workload {
        name: format!("e2-uniform-cohort n={n} w=2^{}", window.trailing_zeros()),
        jobs: (0..n)
            .map(|i| {
                let spec = JobSpec::new(i, 0, window);
                let f: ProtocolFactory = Box::new(|| Box::new(Uniform::single()));
                (spec, f)
            })
            .collect(),
        config: EngineConfig::default(),
    }
}

/// An ALIGNED batch: `n` jobs sharing one class-`c` window (w = 2^c),
/// the population shape of experiment E20's scale sweep. Needs the
/// shared-clock engine config.
fn aligned_batch(n: u32, class: u32) -> Workload {
    let window = 1u64 << class;
    let params = AlignedParams::new(1, 2, class);
    Workload {
        name: format!("e20-aligned-batch n={n} w=2^{class}"),
        jobs: (0..n)
            .map(|i| {
                let spec = JobSpec::new(i, 0, window);
                let f: ProtocolFactory = Box::new(move || Box::new(AlignedProtocol::new(params)));
                (spec, f)
            })
            .collect(),
        config: EngineConfig::aligned(),
    }
}

/// A PUNCTUAL batch at aggregate scale, named for E20 to distinguish it
/// from the small exact-mode `e9-punctual-batch` row.
fn punctual_scale_batch(n: u32, window: u64) -> Workload {
    let mut w = punctual_batch(n, window);
    w.name = format!("e20-punctual-batch n={n} w=2^{}", window.trailing_zeros());
    w
}

/// A dense ALOHA population: one Bernoulli bucket of `n` lanes polled
/// every slot — the workload the kernel's 64-lane word pass targets.
fn aloha_lanes(n: u32, window: u64) -> Workload {
    let p = 2.0 / window as f64;
    Workload {
        name: format!("e1-aloha-lanes n={n} w=2^{}", window.trailing_zeros()),
        jobs: (0..n)
            .map(|i| {
                let spec = JobSpec::new(i, 0, window);
                let f: ProtocolFactory = Box::new(move || Box::new(FixedProbability::new(p)));
                (spec, f)
            })
            .collect(),
        config: EngineConfig::default(),
    }
}

fn main() {
    let workloads = vec![
        punctual_batch(48, 1 << 14),
        poisson_punctual(0.02, 1 << 17),
        poisson_uniform(0.02, 1 << 17),
        backoff_mix(64, 1 << 16),
    ];

    let mut rows = Vec::new();
    for w in &workloads {
        let rss = RssProbe::start();
        let (dense_rate, dense_report) = best_rate(w, Scheduling::Dense, Fidelity::Exact);
        let (event_rate, event_report) = best_rate(w, Scheduling::EventDriven, Fidelity::Exact);

        // The speedup is only meaningful if the modes agree.
        assert_eq!(
            dense_report.outcomes(),
            event_report.outcomes(),
            "{}: modes disagree on outcomes",
            w.name
        );
        assert_eq!(
            dense_report.counts, event_report.counts,
            "{}: modes disagree on slot counts",
            w.name
        );

        let speedup = if dense_rate > 0.0 {
            event_rate / dense_rate
        } else {
            f64::NAN
        };
        let sched = event_report.sched_stats;
        let skipped_fraction = sched.skipped_fraction(event_report.slots_run);
        let (rss_bytes, rss_scope) = rss.finish();
        println!(
            "{:48} jobs={:4} slots={:8}  dense {:>12.0}/s  event {:>12.0}/s  speedup {:5.2}x  \
             (skipped {:.0}% in {} gaps, {} parks, peak {})",
            w.name,
            w.jobs.len(),
            event_report.slots_run,
            dense_rate,
            event_rate,
            speedup,
            skipped_fraction * 100.0,
            sched.gap_skips,
            sched.parks,
            sched.peak_parked
        );
        rows.push(Row {
            workload: w.name.clone(),
            jobs: w.jobs.len(),
            slots_run: event_report.slots_run,
            mode: "exact",
            dense_slots_per_sec: dense_rate,
            event_slots_per_sec: event_rate,
            speedup,
            gap_skips: sched.gap_skips,
            gap_slots: sched.gap_slots,
            skipped_fraction,
            parks: sched.parks,
            peak_parked: sched.peak_parked,
            peak_rss_bytes: rss_bytes,
            rss_scope,
        });
    }

    // Cohort row: exact vs cohort fidelity, both event-driven (dense
    // polling of 10^5 jobs would take minutes and prove nothing new).
    {
        let w = uniform_cohort(100_000, 1 << 19);
        let rss = RssProbe::start();
        let (exact_rate, exact_report) = best_rate(&w, Scheduling::EventDriven, Fidelity::Exact);
        let (cohort_rate, cohort_report) = best_rate(&w, Scheduling::EventDriven, Fidelity::Cohort);
        // Statistical cross-check: at n = 10^5 the success fraction's
        // sampling noise is ~0.2%, so a 2% band is a dozen sigma wide
        // while still catching any modelling error.
        let (ef, cf) = (
            exact_report.success_fraction(),
            cohort_report.success_fraction(),
        );
        assert!(
            (ef - cf).abs() < 0.02,
            "{}: cohort success fraction {cf:.4} vs exact {ef:.4}",
            w.name
        );
        let speedup = if exact_rate > 0.0 {
            cohort_rate / exact_rate
        } else {
            f64::NAN
        };
        let sched = cohort_report.sched_stats;
        let (rss_bytes, rss_scope) = rss.finish();
        println!(
            "{:48} jobs={:4} slots={:8}  exact {:>12.0}/s  cohort {:>11.0}/s  speedup {:5.2}x  \
             (success {:.3} vs {:.3})",
            w.name,
            w.jobs.len(),
            cohort_report.slots_run,
            exact_rate,
            cohort_rate,
            speedup,
            cf,
            ef,
        );
        rows.push(Row {
            workload: w.name.clone(),
            jobs: w.jobs.len(),
            slots_run: cohort_report.slots_run,
            mode: "cohort",
            dense_slots_per_sec: exact_rate,
            event_slots_per_sec: cohort_rate,
            speedup,
            gap_skips: sched.gap_skips,
            gap_slots: sched.gap_slots,
            skipped_fraction: sched.skipped_fraction(cohort_report.slots_run),
            parks: sched.parks,
            peak_parked: sched.peak_parked,
            peak_rss_bytes: rss_bytes,
            rss_scope,
        });
    }

    // Vectorized rows: exact vs vectorized fidelity under identical
    // scheduling, gated on full bit-identity of the reports.
    for (w, scheduling, sched_name) in [
        (
            uniform_cohort(100_000, 1 << 19),
            Scheduling::EventDriven,
            "event",
        ),
        (aloha_lanes(100_000, 1 << 11), Scheduling::Dense, "dense"),
    ] {
        let rss = RssProbe::start();
        let (exact_rate, exact_report) = best_rate(&w, scheduling, Fidelity::Exact);
        let (vector_rate, vector_report) = best_rate(&w, scheduling, Fidelity::Vectorized);
        assert_eq!(
            exact_report.outcomes(),
            vector_report.outcomes(),
            "{}: vectorized outcomes diverge from exact",
            w.name
        );
        assert_eq!(
            exact_report.counts, vector_report.counts,
            "{}: vectorized slot counts diverge from exact",
            w.name
        );
        assert_eq!(
            exact_report.accesses, vector_report.accesses,
            "{}: vectorized access counts diverge from exact",
            w.name
        );
        assert_eq!(
            exact_report.slots_run, vector_report.slots_run,
            "{}: vectorized slots_run diverges from exact",
            w.name
        );
        let speedup = if exact_rate > 0.0 {
            vector_rate / exact_rate
        } else {
            f64::NAN
        };
        let sched = vector_report.sched_stats;
        let (rss_bytes, rss_scope) = rss.finish();
        println!(
            "{:48} jobs={:4} slots={:8}  exact {:>12.0}/s  vector {:>11.0}/s  speedup {:5.2}x  ({sched_name})",
            w.name,
            w.jobs.len(),
            vector_report.slots_run,
            exact_rate,
            vector_rate,
            speedup,
        );
        rows.push(Row {
            workload: w.name.clone(),
            jobs: w.jobs.len(),
            slots_run: vector_report.slots_run,
            mode: "vectorized",
            dense_slots_per_sec: exact_rate,
            event_slots_per_sec: vector_rate,
            speedup,
            gap_skips: sched.gap_skips,
            gap_slots: sched.gap_slots,
            skipped_fraction: sched.skipped_fraction(vector_report.slots_run),
            parks: sched.parks,
            peak_parked: sched.peak_parked,
            peak_rss_bytes: rss_bytes,
            rss_scope,
        });
    }

    // Aggregate-class rows (mode "cohort"): exact vs [`Fidelity::Cohort`]
    // on the ALIGNED and PUNCTUAL batch shapes of E20, both event-driven.
    // A batch shares one class, so per-trial success fractions cluster
    // (one size estimate, one leader fate per trial) — the statistical
    // equivalence claim lives in tests/cohort_equivalence.rs and E20's
    // anchor cells; here a loose band only catches gross modelling breaks
    // while the row measures throughput. The exact baseline runs once (it
    // is the slow side being replaced); the aggregate side keeps REPS.
    for w in [
        aligned_batch(100_000, 20),
        punctual_scale_batch(100_000, 1 << 16),
    ] {
        let rss = RssProbe::start();
        let (exact_rate, exact_report) =
            best_rate_n(&w, Scheduling::EventDriven, Fidelity::Exact, 1);
        let (cohort_rate, cohort_report) = best_rate(&w, Scheduling::EventDriven, Fidelity::Cohort);
        let (ef, cf) = (
            exact_report.success_fraction(),
            cohort_report.success_fraction(),
        );
        assert!(
            (ef - cf).abs() < 0.15,
            "{}: cohort success fraction {cf:.4} vs exact {ef:.4}",
            w.name
        );
        let speedup = if exact_rate > 0.0 {
            cohort_rate / exact_rate
        } else {
            0.0
        };
        // The acceptance floor for the aggregate path: >= 5x the exact
        // engine's slot rate at n = 10^5. A ratio on the same machine, so
        // safe to assert even on slow CI hosts.
        assert!(
            speedup >= 5.0,
            "{}: aggregate speedup {speedup:.2}x is below the 5x floor",
            w.name
        );
        let sched = cohort_report.sched_stats;
        let (rss_bytes, rss_scope) = rss.finish();
        println!(
            "{:48} jobs={:6} slots={:8}  exact {:>12.0}/s  cohort {:>11.0}/s  speedup {:5.1}x  \
             (success {:.3} vs {:.3})",
            w.name,
            w.jobs.len(),
            cohort_report.slots_run,
            exact_rate,
            cohort_rate,
            speedup,
            cf,
            ef,
        );
        rows.push(Row {
            workload: w.name.clone(),
            jobs: w.jobs.len(),
            slots_run: cohort_report.slots_run,
            mode: "cohort",
            dense_slots_per_sec: exact_rate,
            event_slots_per_sec: cohort_rate,
            speedup,
            gap_skips: sched.gap_skips,
            gap_slots: sched.gap_slots,
            skipped_fraction: sched.skipped_fraction(cohort_report.slots_run),
            parks: sched.parks,
            peak_parked: sched.peak_parked,
            peak_rss_bytes: rss_bytes,
            rss_scope,
        });
    }

    // Million-job rows (mode "cohort-only"): single-rep aggregate
    // throughput and peak RSS at n = 10^6 — the regime the aggregate path
    // exists for. No exact baseline (it would dominate the bench's wall
    // time for a number the n = 10^5 rows already establish), so the
    // exact-side fields are zeroed and no speedup is claimed. Windows are
    // comfortably feasible (ALIGNED slack ~16; PUNCTUAL per the round-
    // structure law of E20) so the delivered fraction doubles as a smoke
    // signal, though it is not asserted: ALIGNED's whole-class estimate
    // catastrophe fails ~1 trial in 6 at any n and would make an assert
    // here seed-roulette.
    for w in [
        aligned_batch(1_000_000, 24),
        punctual_scale_batch(1_000_000, 1 << 28),
    ] {
        let rss = RssProbe::start();
        let (rate, report) = best_rate_n(&w, Scheduling::EventDriven, Fidelity::Cohort, 1);
        let sched = report.sched_stats;
        let (rss_bytes, rss_scope) = rss.finish();
        println!(
            "{:48} jobs={:7} slots={:8}  cohort {:>11.0}/s  success {:.3}  peak-rss {} MiB",
            w.name,
            w.jobs.len(),
            report.slots_run,
            rate,
            report.success_fraction(),
            rss_bytes / (1 << 20),
        );
        rows.push(Row {
            workload: w.name.clone(),
            jobs: w.jobs.len(),
            slots_run: report.slots_run,
            mode: "cohort-only",
            dense_slots_per_sec: 0.0,
            event_slots_per_sec: rate,
            speedup: 0.0,
            gap_skips: sched.gap_skips,
            gap_slots: sched.gap_slots,
            skipped_fraction: sched.skipped_fraction(report.slots_run),
            parks: sched.parks,
            peak_parked: sched.peak_parked,
            peak_rss_bytes: rss_bytes,
            rss_scope,
        });
    }

    let bench = Bench {
        generated_by: "cargo run --release -p dcr-bench --bin slotloop",
        seed: SEED,
        reps: REPS,
        rows,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize");
    std::fs::write("BENCH_slotloop.json", json + "\n").expect("write BENCH_slotloop.json");
    println!("wrote BENCH_slotloop.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the monotone-RSS bug: `VmHWM` is a process-lifetime
    /// high-water mark, so without a reset every row reports the max over
    /// all rows so far. The probe must bring the reading back down after
    /// a large transient allocation — i.e. per-row peaks are attributable,
    /// not cumulative.
    #[test]
    fn rss_probe_resets_the_high_water_mark() {
        if !reset_peak_rss() {
            // Reset unsupported here: the probe must say so, so rows are
            // labeled process_peak rather than silently inflated.
            assert_eq!(RssProbe::start().finish().1, "process_peak");
            return;
        }

        // Row 1: a ~64 MiB transient spike (touched so it is resident).
        let spike_probe = RssProbe::start();
        let spike = vec![7u8; 64 << 20];
        assert!(spike.iter().step_by(4096).map(|&b| b as u64).sum::<u64>() > 0);
        let (spiked, scope) = spike_probe.finish();
        assert_eq!(scope, "row");
        drop(spike);

        // Row 2: no allocation. Under the old VmHWM-only sampling this
        // would still report row 1's spike; with the per-row reset it
        // must drop by most of the spike.
        let idle_probe = RssProbe::start();
        let (idle, scope) = idle_probe.finish();
        assert_eq!(scope, "row");
        assert!(
            idle + (32 << 20) < spiked,
            "peak RSS did not reset between rows: spike row {spiked} B, idle row {idle} B"
        );
    }
}
