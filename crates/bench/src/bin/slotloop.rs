//! Slot-loop throughput benchmark: dense polling vs event-driven parking.
//!
//! Runs a handful of large-window experiment-style workloads (the shapes
//! of E9, E10, and E17) under both [`Scheduling`] modes, cross-checks that
//! the reports agree (the equivalence the wake-hint contract promises),
//! and writes before/after slots-per-second plus speedups to
//! `BENCH_slotloop.json` at the workspace root.
//!
//! Timing uses the engine's own `engine_nanos` (slot-loop wall time), so
//! setup and report assembly are excluded. Each configuration runs
//! `REPS` times per mode and the fastest rep is kept — standard practice
//! for throughput floors on a shared machine.

use dcr_baselines::{BinaryExponentialBackoff, Sawtooth};
use dcr_core::punctual::PunctualParams;
use dcr_core::uniform::Uniform;
use dcr_core::PunctualProtocol;
use dcr_sim::engine::{Engine, EngineConfig, Protocol, Scheduling};
use dcr_sim::job::JobSpec;
use dcr_sim::metrics::SimReport;
use dcr_workloads::generators::poisson;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

const REPS: usize = 3;
const SEED: u64 = 20200715; // SPAA'20 conference date

#[derive(Serialize)]
struct Row {
    workload: String,
    jobs: usize,
    slots_run: u64,
    dense_slots_per_sec: f64,
    event_slots_per_sec: f64,
    speedup: f64,
    // Event-driven scheduler counters (SimReport::sched_stats): attribute
    // the speedup — how many slots were fast-forwarded and how hard the
    // wake queue worked to earn it.
    gap_skips: u64,
    gap_slots: u64,
    skipped_fraction: f64,
    parks: u64,
    peak_parked: u64,
}

#[derive(Serialize)]
struct Bench {
    generated_by: &'static str,
    seed: u64,
    reps: usize,
    rows: Vec<Row>,
}

type ProtocolFactory = Box<dyn Fn() -> Box<dyn Protocol>>;

struct Workload {
    name: String,
    jobs: Vec<(JobSpec, ProtocolFactory)>,
}

fn punctual_batch(n: u32, window: u64) -> Workload {
    let params = PunctualParams::laptop();
    Workload {
        name: format!("e9-punctual-batch n={n} w=2^{}", window.trailing_zeros()),
        jobs: (0..n)
            .map(|i| {
                let spec = JobSpec::new(i, 0, window);
                let f: ProtocolFactory = Box::new(move || Box::new(PunctualProtocol::new(params)));
                (spec, f)
            })
            .collect(),
    }
}

fn poisson_specs(rate: f64, horizon: u64, windows: &[u64]) -> Vec<JobSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    poisson(rate, horizon, windows, &mut rng).jobs
}

fn poisson_punctual(rate: f64, horizon: u64) -> Workload {
    let params = PunctualParams::laptop();
    let specs = poisson_specs(rate, horizon, &[1 << 12, 1 << 14]);
    Workload {
        name: format!(
            "e10-punctual-poisson rate={rate} horizon=2^{}",
            horizon.trailing_zeros()
        ),
        jobs: specs
            .into_iter()
            .map(|spec| {
                let f: ProtocolFactory = Box::new(move || Box::new(PunctualProtocol::new(params)));
                (spec, f)
            })
            .collect(),
    }
}

fn poisson_uniform(rate: f64, horizon: u64) -> Workload {
    let specs = poisson_specs(rate, horizon, &[1 << 14, 1 << 16]);
    Workload {
        name: format!(
            "e10-uniform-poisson rate={rate} horizon=2^{}",
            horizon.trailing_zeros()
        ),
        jobs: specs
            .into_iter()
            .map(|spec| {
                let f: ProtocolFactory = Box::new(|| Box::new(Uniform::single()));
                (spec, f)
            })
            .collect(),
    }
}

fn backoff_mix(n: u32, window: u64) -> Workload {
    Workload {
        name: format!("e17-backoff-mix n={n} w=2^{}", window.trailing_zeros()),
        jobs: (0..n)
            .map(|i| {
                let release = u64::from(i) * 97 % (window / 4);
                let spec = JobSpec::new(i, release, release + window);
                let f: ProtocolFactory = if i % 2 == 0 {
                    Box::new(|| Box::new(Sawtooth::new()))
                } else {
                    Box::new(|| Box::new(BinaryExponentialBackoff::new()))
                };
                (spec, f)
            })
            .collect(),
    }
}

fn run_mode(w: &Workload, scheduling: Scheduling) -> SimReport {
    let config = EngineConfig {
        scheduling,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(config, SEED);
    for (spec, factory) in &w.jobs {
        engine.add_job(*spec, factory());
    }
    engine.run()
}

/// Fastest slots/sec over `REPS` runs; also returns the last report for
/// the cross-check.
fn best_rate(w: &Workload, scheduling: Scheduling) -> (f64, SimReport) {
    let mut best = 0.0f64;
    let mut last = None;
    for _ in 0..REPS {
        let report = run_mode(w, scheduling);
        let secs = report.engine_nanos as f64 / 1e9;
        if secs > 0.0 {
            best = best.max(report.slots_run as f64 / secs);
        }
        last = Some(report);
    }
    (best, last.expect("REPS >= 1"))
}

fn main() {
    let workloads = vec![
        punctual_batch(48, 1 << 14),
        poisson_punctual(0.02, 1 << 17),
        poisson_uniform(0.02, 1 << 17),
        backoff_mix(64, 1 << 16),
    ];

    let mut rows = Vec::new();
    for w in &workloads {
        let (dense_rate, dense_report) = best_rate(w, Scheduling::Dense);
        let (event_rate, event_report) = best_rate(w, Scheduling::EventDriven);

        // The speedup is only meaningful if the modes agree.
        assert_eq!(
            dense_report.outcomes(),
            event_report.outcomes(),
            "{}: modes disagree on outcomes",
            w.name
        );
        assert_eq!(
            dense_report.counts, event_report.counts,
            "{}: modes disagree on slot counts",
            w.name
        );

        let speedup = if dense_rate > 0.0 {
            event_rate / dense_rate
        } else {
            f64::NAN
        };
        let sched = event_report.sched_stats;
        let skipped_fraction = sched.skipped_fraction(event_report.slots_run);
        println!(
            "{:48} jobs={:4} slots={:8}  dense {:>12.0}/s  event {:>12.0}/s  speedup {:5.2}x  \
             (skipped {:.0}% in {} gaps, {} parks, peak {})",
            w.name,
            w.jobs.len(),
            event_report.slots_run,
            dense_rate,
            event_rate,
            speedup,
            skipped_fraction * 100.0,
            sched.gap_skips,
            sched.parks,
            sched.peak_parked
        );
        rows.push(Row {
            workload: w.name.clone(),
            jobs: w.jobs.len(),
            slots_run: event_report.slots_run,
            dense_slots_per_sec: dense_rate,
            event_slots_per_sec: event_rate,
            speedup,
            gap_skips: sched.gap_skips,
            gap_slots: sched.gap_slots,
            skipped_fraction,
            parks: sched.parks,
            peak_parked: sched.peak_parked,
        });
    }

    let bench = Bench {
        generated_by: "cargo run --release -p dcr-bench --bin slotloop",
        seed: SEED,
        reps: REPS,
        rows,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize");
    std::fs::write("BENCH_slotloop.json", json + "\n").expect("write BENCH_slotloop.json");
    println!("wrote BENCH_slotloop.json");
}
