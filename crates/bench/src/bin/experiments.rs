//! CLI entry point: regenerate the paper's figures and claim tables.
//!
//! ```text
//! experiments [IDS…] [--only ID[,ID…]] [--quick] [--seed N] [--trials N]
//!             [--threads N] [--out DIR] [--json DIR] [--probe DIR] [--list]
//! experiments --spec FILE [--json DIR]
//! ```
//!
//! With no ids, runs the full suite in order; `--only` selects experiments
//! explicitly (same as positional ids, comma lists accepted). Every run prints its seed;
//! re-running with `--seed` reproduces output bit-for-bit. `--out DIR`
//! additionally writes each experiment's report to `DIR/<id>.txt`;
//! `--json DIR` writes the structured artifact to `DIR/<id>.json` plus a
//! suite-level `BENCH_summary.json` (see EXPERIMENTS.md for the schema);
//! `--probe DIR` asks probe-aware experiments (E19) to also write trace
//! artifacts such as Perfetto JSON files there.
//!
//! `--spec FILE` bypasses the suite and runs one declarative
//! [`dcr_bench::runspec::ExperimentSpec`] from a JSON file — the exact
//! code path `dcr-server` executes for submitted experiments, so a spec
//! debugged here behaves identically when POSTed to the service. Prints
//! the cache key the server would use; with `--json DIR` also writes the
//! structured report to `DIR/spec-<key-prefix>.json`.

use dcr_bench::{run_experiment_report, ExpConfig, ALL_EXPERIMENTS};
use dcr_stats::report::SCHEMA_VERSION;
use dcr_stats::{ExperimentReport, Provenance};
use serde::Serialize;

/// One line of the suite-level summary: what ran and how it went.
#[derive(Serialize)]
struct SummaryEntry {
    experiment: String,
    title: String,
    rows: usize,
    checks_total: usize,
    checks_passed: usize,
    wall_secs: f64,
    slots_simulated: u64,
    slots_per_sec: f64,
}

/// `BENCH_summary.json`: one run of the suite, with provenance.
#[derive(Serialize)]
struct Summary {
    schema_version: u32,
    seed: u64,
    quick: bool,
    experiments: Vec<SummaryEntry>,
    all_checks_passed: bool,
    total_wall_secs: f64,
    total_slots_simulated: u64,
    slots_per_sec: f64,
    provenance: Provenance,
}

/// Exit with a usage error instead of a panic backtrace.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}; try --help");
    std::process::exit(2);
}

/// Exit cleanly on a filesystem failure, naming the path.
fn io_check<T>(what: &str, path: &std::path::Path, res: std::io::Result<T>) -> T {
    res.unwrap_or_else(|e| {
        eprintln!("error: {what} {}: {e}", path.display());
        std::process::exit(1);
    })
}

/// `--spec FILE`: parse, validate, and run one declarative spec through
/// the same `runspec` path the experiment server uses.
fn run_spec_file(path: &std::path::Path, json_dir: Option<&std::path::Path>) {
    use dcr_bench::runspec::{self, ExperimentSpec};

    let raw = io_check("cannot read", path, std::fs::read_to_string(path));
    let spec: ExperimentSpec = serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!(
            "error: {} is not a valid ExperimentSpec: {e:?}",
            path.display()
        );
        std::process::exit(2);
    });
    let key = runspec::cache_key(&spec, &runspec::code_version());
    println!("spec: {}", spec.label());
    println!("cache key: {key}");

    let progress = |done: u64, total: u64| {
        eprintln!("  trials {done}/{total}");
    };
    let started = std::time::Instant::now();
    match runspec::run_spec_with(&spec, progress, &dcr_sim::CancelToken::new()) {
        Ok(out) => {
            println!("{}", out.text);
            println!(
                "[{} probe events, {:.1}s]",
                out.events.len(),
                started.elapsed().as_secs_f64()
            );
            if let Some(dir) = json_dir {
                let json =
                    serde_json::to_string_pretty(&out.report).expect("serialize experiment report");
                let file = dir.join(format!("spec-{}.json", &key[..16]));
                io_check("cannot write", &file, std::fs::write(&file, json));
                println!("wrote {}", file.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::full();
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut json_dir: Option<std::path::PathBuf> = None;
    let mut spec_file: Option<std::path::PathBuf> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--spec" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--spec needs a JSON file"));
                spec_file = Some(v.into());
            }
            "--out" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--out needs a directory"));
                out_dir = Some(v.into());
            }
            "--json" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--json needs a directory"));
                json_dir = Some(v.into());
            }
            "--probe" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--probe needs a directory"));
                cfg.probe_dir = Some(v.into());
            }
            "--quick" => {
                cfg = ExpConfig {
                    quick: true,
                    trials: cfg.trials.min(60),
                    ..cfg
                };
            }
            "--seed" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--seed needs a value"));
                cfg.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seed must be an integer"));
            }
            "--trials" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--trials needs a value"));
                cfg.trials = v
                    .parse()
                    .unwrap_or_else(|_| usage_error("--trials must be an integer"));
            }
            "--threads" => {
                // Pin the Monte-Carlo worker count (recorded in the
                // artifacts' provenance) so runs on heterogeneous CI
                // machines are comparable. Results never depend on it.
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--threads needs a value"));
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage_error("--threads must be a positive integer"));
                dcr_sim::runner::set_worker_override(Some(n));
            }
            "--only" => {
                // Explicit selection flag (equivalent to positional ids;
                // accepts comma-separated lists for script friendliness).
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--only needs an experiment id"));
                ids.extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [IDS…] [--only ID[,ID…]] [--quick] [--seed N] \
                     [--trials N] [--threads N] [--out DIR] [--json DIR] [--probe DIR] \
                     [--list]\n       experiments --spec FILE [--json DIR]\nids: {}",
                    ALL_EXPERIMENTS.join(" ")
                );
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
            id => ids.push(id.to_string()),
        }
    }
    // Fail fast on unwritable output dirs rather than after the whole run.
    for dir in [&out_dir, &json_dir].into_iter().flatten() {
        io_check("cannot create directory", dir, std::fs::create_dir_all(dir));
    }

    if let Some(path) = spec_file {
        if !ids.is_empty() {
            usage_error("--spec runs one declarative spec; experiment ids don't apply");
        }
        run_spec_file(&path, json_dir.as_deref());
        return;
    }

    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    println!(
        "contention-deadlines experiment suite — seed {}, {} mode\n",
        cfg.seed,
        if cfg.quick { "quick" } else { "full" }
    );
    let suite_started = std::time::Instant::now();
    let mut reports: Vec<ExperimentReport> = Vec::new();
    for id in &ids {
        let started = std::time::Instant::now();
        match run_experiment_report(id, &cfg) {
            Some(out) => {
                println!("==================== {id} ====================");
                println!("{}", out.text);
                println!("[{id} took {:.1}s]\n", started.elapsed().as_secs_f64());
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.txt"));
                    io_check("cannot write", &path, std::fs::write(&path, &out.text));
                }
                if let Some(dir) = &json_dir {
                    let json = serde_json::to_string_pretty(&out.report)
                        .expect("serialize experiment report");
                    let path = dir.join(format!("{id}.json"));
                    io_check("cannot write", &path, std::fs::write(&path, json));
                }
                reports.push(out.report);
            }
            None => {
                eprintln!("unknown experiment id {id}; try --list");
                std::process::exit(2);
            }
        }
    }

    if let Some(dir) = &json_dir {
        let total_slots: u64 = reports.iter().map(|r| r.timing.slots_simulated).sum();
        let total_wall = suite_started.elapsed().as_secs_f64();
        let summary = Summary {
            schema_version: SCHEMA_VERSION,
            seed: cfg.seed,
            quick: cfg.quick,
            experiments: reports
                .iter()
                .map(|r| SummaryEntry {
                    experiment: r.experiment.clone(),
                    title: r.title.clone(),
                    rows: r.rows.len(),
                    checks_total: r.checks.len(),
                    checks_passed: r.checks.iter().filter(|c| c.passed).count(),
                    wall_secs: r.timing.wall_secs,
                    slots_simulated: r.timing.slots_simulated,
                    slots_per_sec: r.timing.slots_per_sec,
                })
                .collect(),
            all_checks_passed: reports.iter().all(|r| r.all_checks_passed()),
            total_wall_secs: total_wall,
            total_slots_simulated: total_slots,
            slots_per_sec: if total_wall > 0.0 {
                total_slots as f64 / total_wall
            } else {
                0.0
            },
            provenance: Provenance::capture_with_threads(dcr_sim::runner::configured_workers(
                u64::MAX,
            ) as u64),
        };
        let json = serde_json::to_string_pretty(&summary).expect("serialize suite summary");
        let path = dir.join("BENCH_summary.json");
        io_check("cannot write", &path, std::fs::write(&path, json));
        println!(
            "wrote {} JSON artifacts + BENCH_summary.json to {}",
            reports.len(),
            dir.display()
        );
    }
}
