//! CLI entry point: regenerate the paper's figures and claim tables.
//!
//! ```text
//! experiments [IDS…] [--quick] [--seed N] [--trials N] [--out DIR] [--list]
//! ```
//!
//! With no ids, runs the full suite in order. Every run prints its seed;
//! re-running with `--seed` reproduces output bit-for-bit. `--out DIR`
//! additionally writes each experiment's report to `DIR/<id>.txt`.

use dcr_bench::{run_experiment, ExpConfig, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::full();
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                let v = iter.next().expect("--out needs a directory");
                out_dir = Some(v.into());
            }
            "--quick" => {
                cfg = ExpConfig {
                    quick: true,
                    trials: cfg.trials.min(60),
                    ..cfg
                };
            }
            "--seed" => {
                let v = iter.next().expect("--seed needs a value");
                cfg.seed = v.parse().expect("--seed must be an integer");
            }
            "--trials" => {
                let v = iter.next().expect("--trials needs a value");
                cfg.trials = v.parse().expect("--trials must be an integer");
            }
            "--list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [IDS…] [--quick] [--seed N] [--trials N] \
                     [--out DIR] [--list]\nids: {}",
                    ALL_EXPERIMENTS.join(" ")
                );
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    println!(
        "contention-deadlines experiment suite — seed {}, {} mode\n",
        cfg.seed,
        if cfg.quick { "quick" } else { "full" }
    );
    for id in &ids {
        let started = std::time::Instant::now();
        match run_experiment(id, &cfg) {
            Some(report) => {
                println!("==================== {id} ====================");
                println!("{report}");
                println!("[{id} took {:.1}s]\n", started.elapsed().as_secs_f64());
                if let Some(dir) = &out_dir {
                    std::fs::create_dir_all(dir).expect("create --out directory");
                    std::fs::write(dir.join(format!("{id}.txt")), &report)
                        .expect("write experiment report");
                }
            }
            None => {
                eprintln!("unknown experiment id {id}; try --list");
                std::process::exit(2);
            }
        }
    }
}
