//! Declarative experiment specs and the one spec→run code path.
//!
//! An [`ExperimentSpec`] names a complete Monte-Carlo run as plain data:
//! protocol, workload, fidelity, scheduling, adversary, probe
//! configuration, master seed, and trial count. [`run_spec`] executes it
//! on the trial arena and produces an [`ExperimentReport`] whose
//! deterministic view is a pure function of the spec — which is what lets
//! the experiment server content-address finished results ([`cache_key`])
//! and serve repeated submissions from cache, and what makes the server's
//! answer byte-identical to an in-process run of the same spec.
//!
//! Both the `experiments --spec FILE` CLI path and `dcr-server` call into
//! this module; neither carries its own spec→engine plumbing.

use dcr_baselines::{BinaryExponentialBackoff, FixedProbability, Sawtooth};
use dcr_core::punctual::PunctualParams;
use dcr_core::uniform::Uniform;
use dcr_core::{AlignedParams, AlignedProtocol, PunctualProtocol};
use dcr_sim::engine::Protocol;
use dcr_sim::prelude::*;
use dcr_sim::runner::{run_trials_ctl, CancelToken, RunError, RunStats, TrialOutcome};
use dcr_sim::{AdversarySpec, EngineConfig, Fidelity, ProbeSpec, Scheduling, SinkSpec};
use dcr_stats::{content_hash, ExperimentReport, Proportion, Provenance, Summary};
use dcr_workloads::{generators, Instance};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::ExpConfig;
use crate::report::ReportBuilder;

/// Which contention-resolution protocol every job in the run executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolSpec {
    /// `attempts` uniformly random transmission slots in the window
    /// (Section 2 baseline; `attempts = 1` is the classic single shot).
    Uniform {
        /// Number of uniformly chosen transmission attempts (≥ 1).
        attempts: u64,
    },
    /// The Section 3 ALIGNED protocol. Requires a power-of-2-aligned
    /// workload; the engine exposes the shared slot clock.
    Aligned {
        /// Batch-count slack multiplier (≥ 1).
        lambda: u64,
        /// Estimation confirmation threshold (power of two, ≥ 2).
        tau: u64,
        /// Smallest window class the schedule descends to (≥ 1).
        min_class: u32,
    },
    /// The Section 4 PUNCTUAL protocol (laptop-scale parameters). Runs
    /// without any shared clock.
    Punctual,
    /// Slotted-ALOHA baseline: transmit with fixed probability `p`.
    Aloha {
        /// Per-slot transmission probability, in `(0, 1]`.
        p: f64,
    },
    /// Binary exponential backoff baseline.
    Beb,
    /// Sawtooth backoff-backon baseline.
    Sawtooth,
}

/// Which arrival pattern the run simulates (maps onto
/// [`dcr_workloads::generators`]; the instance is built once per spec and
/// shared by every trial).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// `n` jobs all released at slot 0 with window `w` (one-shot batch).
    Batch {
        /// Number of jobs (≥ 1).
        n: u64,
        /// Window size in slots (≥ 1).
        w: u64,
    },
    /// `n` jobs released every `stride` slots, each with window `w`.
    Staggered {
        /// Number of jobs (≥ 1).
        n: u64,
        /// Release spacing in slots (≥ 1).
        stride: u64,
        /// Window size in slots (≥ 1).
        w: u64,
    },
    /// Harmonic window spread: job `j` gets window `j / gamma`.
    Harmonic {
        /// Number of jobs (≥ 1).
        n: u64,
        /// Inverse density parameter `1/gamma` (≥ 1).
        inv_gamma: u64,
    },
    /// Poisson arrivals at `rate` jobs/slot over `horizon` slots, window
    /// drawn uniformly from `windows`. Sampled deterministically from the
    /// spec seed.
    Poisson {
        /// Arrival rate in jobs per slot, in `(0, 1]`.
        rate: f64,
        /// Arrival horizon in slots (≥ 1).
        horizon: u64,
        /// Candidate window sizes (non-empty, each ≥ 1).
        windows: Vec<u64>,
    },
    /// `bursts` bursts of `burst_size` simultaneous jobs, one every
    /// `period` slots, each job with window `w`.
    Bursty {
        /// Jobs per burst (≥ 1).
        burst_size: u64,
        /// Slots between burst releases (≥ 1).
        period: u64,
        /// Window size in slots (≥ 1).
        w: u64,
        /// Number of bursts (≥ 1).
        bursts: u64,
    },
}

/// Serializable mirror of [`dcr_sim::Fidelity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FidelitySpec {
    /// Every job stepped individually every slot.
    Exact,
    /// Statistically identical cohort aggregation where profiles allow.
    Cohort,
    /// Counter-based vectorized kernel where profiles allow.
    Vectorized,
}

/// Serializable mirror of [`dcr_sim::Scheduling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingSpec {
    /// Skip slots no job can act in (wake hints).
    EventDriven,
    /// Poll every live job every slot.
    Dense,
}

/// An adversary plus the constant jam success probability of the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryCell {
    /// Which jamming strategy to instantiate (fresh per trial).
    pub spec: AdversarySpec,
    /// Probability a jamming attempt converts the slot to noise, `[0, 1]`.
    pub p_jam: f64,
}

/// A complete, self-contained description of one Monte-Carlo experiment.
///
/// Everything that influences the measured numbers is in here; the
/// deterministic part of the resulting report is a pure function of this
/// struct (plus the code version), which is the contract the server's
/// content-addressed cache relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Protocol every job runs.
    pub protocol: ProtocolSpec,
    /// Arrival pattern.
    pub workload: WorkloadSpec,
    /// Simulation fidelity tier.
    pub fidelity: FidelitySpec,
    /// Slot-loop scheduling strategy.
    pub scheduling: SchedulingSpec,
    /// Optional jamming adversary.
    pub adversary: Option<AdversaryCell>,
    /// Optional probe sinks, attached to trial 0 only (the probe layer is
    /// physics-neutral, so probed and unprobed trials agree bit-for-bit).
    pub probe: Option<ProbeSpec>,
    /// Optional hard cap on simulated slots per trial.
    pub max_slots: Option<u64>,
    /// Master seed; trial `t` derives its own seed from this.
    pub seed: u64,
    /// Monte-Carlo trial count (≥ 1).
    pub trials: u64,
}

/// A spec that names an impossible or out-of-range run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid experiment spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Everything that can go wrong between a parsed spec and its report.
#[derive(Debug, Clone, PartialEq)]
pub enum RunSpecError {
    /// The spec failed validation before any slot was simulated.
    Invalid(SpecError),
    /// The Monte-Carlo batch did not complete (worker panic or cancel).
    Run(RunError),
}

impl std::fmt::Display for RunSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunSpecError::Invalid(e) => e.fmt(f),
            RunSpecError::Run(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunSpecError {}

impl From<SpecError> for RunSpecError {
    fn from(e: SpecError) -> Self {
        RunSpecError::Invalid(e)
    }
}

impl From<RunError> for RunSpecError {
    fn from(e: RunError) -> Self {
        RunSpecError::Run(e)
    }
}

/// Output of one spec run: the structured report, the probe event stream
/// captured from trial 0 (empty unless the spec configured a probe), and
/// a short human-readable summary.
#[derive(Debug, Clone)]
pub struct SpecOutput {
    /// The structured artifact; `report.deterministic_view()` is a pure
    /// function of the spec.
    pub report: ExperimentReport,
    /// Probe events observed in trial 0 (the SSE stream's payload).
    pub events: Vec<ProbeRecord>,
    /// Rendered one-screen summary.
    pub text: String,
}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

impl ExperimentSpec {
    /// Check every range constraint the protocol/workload constructors
    /// would otherwise `assert!` on, so a bad spec is a typed error — not
    /// a worker panic — by the time it reaches the engine.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.trials == 0 {
            return Err(err("trials must be >= 1"));
        }
        match &self.protocol {
            ProtocolSpec::Uniform { attempts } if *attempts == 0 => {
                return Err(err("Uniform.attempts must be >= 1"));
            }
            ProtocolSpec::Aligned {
                lambda,
                tau,
                min_class,
            } => {
                if *lambda == 0 {
                    return Err(err("Aligned.lambda must be >= 1"));
                }
                if *tau < 2 || !tau.is_power_of_two() {
                    return Err(err("Aligned.tau must be a power of two >= 2"));
                }
                if *min_class == 0 {
                    return Err(err("Aligned.min_class must be >= 1"));
                }
            }
            ProtocolSpec::Aloha { p } if !(*p > 0.0 && *p <= 1.0) => {
                return Err(err("Aloha.p must be in (0, 1]"));
            }
            _ => {}
        }
        match &self.workload {
            WorkloadSpec::Batch { n, w } => {
                if *n == 0 || *w == 0 {
                    return Err(err("Batch.n and Batch.w must be >= 1"));
                }
            }
            WorkloadSpec::Staggered { n, stride, w } => {
                if *n == 0 || *stride == 0 || *w == 0 {
                    return Err(err("Staggered.n, .stride and .w must be >= 1"));
                }
            }
            WorkloadSpec::Harmonic { n, inv_gamma } => {
                if *n == 0 || *inv_gamma == 0 {
                    return Err(err("Harmonic.n and Harmonic.inv_gamma must be >= 1"));
                }
            }
            WorkloadSpec::Poisson {
                rate,
                horizon,
                windows,
            } => {
                if !(*rate > 0.0 && *rate <= 1.0) {
                    return Err(err("Poisson.rate must be in (0, 1] jobs/slot"));
                }
                if *horizon == 0 {
                    return Err(err("Poisson.horizon must be >= 1"));
                }
                if windows.is_empty() || windows.contains(&0) {
                    return Err(err("Poisson.windows must be non-empty with entries >= 1"));
                }
            }
            WorkloadSpec::Bursty {
                burst_size,
                period,
                w,
                bursts,
            } => {
                if *burst_size == 0 || *period == 0 || *w == 0 || *bursts == 0 {
                    return Err(err("Bursty fields must all be >= 1"));
                }
            }
        }
        if let Some(adv) = &self.adversary {
            if !(0.0..=1.0).contains(&adv.p_jam) {
                return Err(err("adversary.p_jam must be in [0, 1]"));
            }
        }
        Ok(())
    }

    /// Build the (trial-independent) job instance this spec describes.
    /// Poisson sampling is seeded from the spec seed, so the instance is
    /// a pure function of the spec.
    pub fn instance(&self) -> Instance {
        match &self.workload {
            WorkloadSpec::Batch { n, w } => generators::batch(*n as usize, *w),
            WorkloadSpec::Staggered { n, stride, w } => {
                generators::staggered(*n as usize, *stride, *w)
            }
            WorkloadSpec::Harmonic { n, inv_gamma } => {
                generators::harmonic(*n as usize, *inv_gamma)
            }
            WorkloadSpec::Poisson {
                rate,
                horizon,
                windows,
            } => {
                let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
                generators::poisson(*rate, *horizon, windows, &mut rng)
            }
            WorkloadSpec::Bursty {
                burst_size,
                period,
                w,
                bursts,
            } => generators::bursty(*burst_size as usize, *period, *w, *bursts as usize),
        }
    }

    /// The engine configuration this spec maps to (without the probe,
    /// which is attached to trial 0 only by [`run_spec_with`]).
    fn engine_config(&self) -> EngineConfig {
        let mut cfg = match self.protocol {
            // ALIGNED is the one protocol whose model grants a shared
            // slot clock; every other protocol must run without it.
            ProtocolSpec::Aligned { .. } => EngineConfig::aligned(),
            _ => EngineConfig::default(),
        };
        cfg.max_slots = self.max_slots;
        cfg.scheduling = match self.scheduling {
            SchedulingSpec::EventDriven => Scheduling::EventDriven,
            SchedulingSpec::Dense => Scheduling::Dense,
        };
        cfg.fidelity = match self.fidelity {
            FidelitySpec::Exact => Fidelity::Exact,
            FidelitySpec::Cohort => Fidelity::Cohort,
            FidelitySpec::Vectorized => Fidelity::Vectorized,
        };
        cfg
    }

    /// One boxed protocol instance for one job.
    fn protocol_instance(&self) -> Box<dyn Protocol> {
        match self.protocol {
            ProtocolSpec::Uniform { attempts } => Box::new(Uniform::new(attempts as usize)),
            ProtocolSpec::Aligned {
                lambda,
                tau,
                min_class,
            } => Box::new(AlignedProtocol::new(AlignedParams::new(
                lambda, tau, min_class,
            ))),
            ProtocolSpec::Punctual => Box::new(PunctualProtocol::new(PunctualParams::laptop())),
            ProtocolSpec::Aloha { p } => Box::new(FixedProbability::new(p)),
            ProtocolSpec::Beb => Box::new(BinaryExponentialBackoff::new()),
            ProtocolSpec::Sawtooth => Box::new(Sawtooth::new()),
        }
    }

    /// A short label for report titles and log lines.
    pub fn label(&self) -> String {
        let proto = match &self.protocol {
            ProtocolSpec::Uniform { attempts } => format!("UNIFORM(k={attempts})"),
            ProtocolSpec::Aligned {
                lambda,
                tau,
                min_class,
            } => format!("ALIGNED(λ={lambda},τ={tau},c₀={min_class})"),
            ProtocolSpec::Punctual => "PUNCTUAL".to_string(),
            ProtocolSpec::Aloha { p } => format!("ALOHA(p={p})"),
            ProtocolSpec::Beb => "BEB".to_string(),
            ProtocolSpec::Sawtooth => "SAWTOOTH".to_string(),
        };
        format!("{proto} on {}", self.instance().name)
    }
}

/// The code-version component of the cache key: git revision (plus a
/// `-dirty` marker) when available, `"unknown"` otherwise. A cache keyed
/// with `"unknown"` still self-invalidates on any spec change, just not
/// on rebuilds.
pub fn code_version() -> String {
    let p = Provenance::capture();
    match (p.git_rev, p.git_dirty) {
        (Some(rev), Some(true)) => format!("{rev}-dirty"),
        (Some(rev), _) => rev,
        _ => "unknown".to_string(),
    }
}

/// Content-address a spec under a code version: SHA-256 over the
/// canonical JSON of `{code_version, spec}`. The spec is re-serialized
/// from its typed form and the canonical renderer sorts keys, so two JSON
/// submissions that differ only in field order produce the same key;
/// changing any semantic field — or the code version — changes it.
pub fn cache_key(spec: &ExperimentSpec, code_version: &str) -> String {
    let envelope = serde::Value::Object(vec![
        (
            "code_version".to_string(),
            serde::Value::String(code_version.to_string()),
        ),
        ("spec".to_string(), spec.to_value()),
    ]);
    content_hash(&envelope)
}

/// Per-trial aggregate the spec runner folds over.
struct TrialStat {
    successes: u64,
    jobs: u64,
    slots: u64,
    success_fraction: f64,
    latency_sum: u64,
    latency_n: u64,
    accesses_sum: f64,
    events: Vec<ProbeRecord>,
}

/// Full submission-time validation: range checks plus workload
/// construction and the protocol/workload compatibility constraints —
/// everything [`run_spec_with`] verifies before simulating a slot.
/// Returns the built instance so the caller (or the runner) doesn't pay
/// for it twice.
pub fn check(spec: &ExperimentSpec) -> Result<Instance, SpecError> {
    spec.validate()?;
    let instance = spec.instance();
    if matches!(spec.protocol, ProtocolSpec::Aligned { .. }) && !instance.is_aligned() {
        return Err(err(
            "Aligned protocol requires a power-of-2-aligned workload \
             (every window a power of two, every release a multiple of it)",
        ));
    }
    Ok(instance)
}

/// Run a spec with default hooks (no progress, no cancellation).
pub fn run_spec(spec: &ExperimentSpec) -> Result<SpecOutput, RunSpecError> {
    run_spec_with(spec, |_, _| {}, &CancelToken::new())
}

/// Run a spec on the trial arena with progress and cancellation hooks —
/// the single spec→run code path shared by the `--spec` CLI mode and the
/// experiment server's worker pool.
///
/// `progress(done, total)` fires on the runner's batched cadence. The
/// report's deterministic view depends only on the spec (timing and
/// provenance are volatile by design).
pub fn run_spec_with<P>(
    spec: &ExperimentSpec,
    progress: P,
    cancel: &CancelToken,
) -> Result<SpecOutput, RunSpecError>
where
    P: Fn(u64, u64) + Sync,
{
    let instance = check(spec)?;

    // Trial 0 carries the probe sinks; an event-log sink is appended when
    // missing so the server always has a record stream to serve. The
    // probe layer is physics-neutral, so this changes no measured number.
    let probed_config = spec.probe.as_ref().map(|p| {
        let mut cfg = spec.engine_config();
        let mut sinks = p.sinks.clone();
        if !sinks.iter().any(|s| matches!(s, SinkSpec::Events)) {
            sinks.push(SinkSpec::Events);
        }
        cfg.probe = Some(ProbeSpec { sinks });
        cfg
    });
    let base_config = spec.engine_config();

    let trial = |t: u64, seed: u64| -> TrialStat {
        let config = match (&probed_config, t) {
            (Some(cfg), 0) => cfg.clone(),
            _ => base_config.clone(),
        };
        let mut engine = Engine::new(config, seed);
        if let Some(adv) = &spec.adversary {
            engine.set_jammer(adv.spec.jammer(adv.p_jam));
        }
        engine.add_jobs(&instance.jobs, |_| spec.protocol_instance());
        let report = engine.run();
        let latencies = report.latencies();
        let events = report
            .probes
            .as_ref()
            .and_then(|p| p.events())
            .map(<[ProbeRecord]>::to_vec)
            .unwrap_or_default();
        let mean_accesses = report.mean_accesses();
        TrialStat {
            successes: report.successes() as u64,
            jobs: instance.jobs.len() as u64,
            slots: report.slots_run,
            success_fraction: report.success_fraction(),
            latency_sum: latencies.iter().sum(),
            latency_n: latencies.len() as u64,
            accesses_sum: if mean_accesses.is_finite() {
                mean_accesses * instance.jobs.len() as f64
            } else {
                0.0
            },
            events,
        }
    };

    let (outcomes, stats): (Vec<TrialOutcome<TrialStat>>, RunStats) =
        run_trials_ctl(spec.trials, spec.seed, trial, progress, cancel)?;

    Ok(assemble_output(spec, &instance, outcomes, stats))
}

fn assemble_output(
    spec: &ExperimentSpec,
    instance: &Instance,
    outcomes: Vec<TrialOutcome<TrialStat>>,
    stats: RunStats,
) -> SpecOutput {
    let cfg = ExpConfig {
        seed: spec.seed,
        trials: spec.trials,
        quick: false,
        probe_dir: None,
    };
    let mut b = ReportBuilder::new("spec", spec.label(), &cfg);
    b.param("protocol", format!("{:?}", spec.protocol))
        .param("workload", format!("{:?}", spec.workload))
        .param("fidelity", format!("{:?}", spec.fidelity))
        .param("scheduling", format!("{:?}", spec.scheduling))
        .param(
            "adversary",
            spec.adversary
                .as_ref()
                .map(|a| format!("{:?} p_jam={}", a.spec, a.p_jam))
                .unwrap_or_else(|| "none".to_string()),
        )
        .param("jobs", instance.jobs.len())
        .param("trials", spec.trials);

    let mut successes = 0u64;
    let mut jobs = 0u64;
    let mut slots = 0u64;
    let mut latency_sum = 0u64;
    let mut latency_n = 0u64;
    let mut accesses_sum = 0.0f64;
    let mut fractions = Summary::new();
    let mut events = Vec::new();
    for o in &outcomes {
        successes += o.value.successes;
        jobs += o.value.jobs;
        slots += o.value.slots;
        latency_sum += o.value.latency_sum;
        latency_n += o.value.latency_n;
        accesses_sum += o.value.accesses_sum;
        fractions.push(o.value.success_fraction);
        if o.trial == 0 {
            events = o.value.events.clone();
        }
    }

    let pooled = Proportion::new(successes, jobs);
    b.prop("all", "job_success_rate", &pooled)
        .row("all", "mean_success_fraction", fractions.mean())
        .row("all", "slots_per_trial", slots as f64 / spec.trials as f64);
    if fractions.n() > 1 {
        b.row("all", "sd_success_fraction", fractions.std_dev());
    }
    if latency_n > 0 {
        b.row(
            "all",
            "mean_latency_slots",
            latency_sum as f64 / latency_n as f64,
        );
    }
    if jobs > 0 {
        b.row("all", "mean_accesses", accesses_sum / jobs as f64);
    }
    b.add_trials(spec.trials).add_slots(slots);

    let text = format!(
        "{label}\n\
         trials            {trials}\n\
         jobs/trial        {jobs_per}\n\
         job success rate  {rate:.4} (Wilson95 [{lo:.4}, {hi:.4}])\n\
         mean latency      {latency}\n\
         slots/trial       {spt:.1}\n\
         wall              {wall:.2?} ({workers} workers)\n",
        label = spec.label(),
        trials = spec.trials,
        jobs_per = instance.jobs.len(),
        rate = pooled.estimate(),
        lo = pooled.wilson95().0,
        hi = pooled.wilson95().1,
        latency = if latency_n > 0 {
            format!("{:.1} slots", latency_sum as f64 / latency_n as f64)
        } else {
            "n/a (no deliveries)".to_string()
        },
        spt = slots as f64 / spec.trials as f64,
        wall = stats.wall,
        workers = stats.workers,
    );

    let out = b.finish(text);
    SpecOutput {
        report: out.report,
        events,
        text: out.text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> ExperimentSpec {
        ExperimentSpec {
            protocol: ProtocolSpec::Aligned {
                lambda: 1,
                tau: 2,
                min_class: 6,
            },
            workload: WorkloadSpec::Batch { n: 8, w: 64 },
            fidelity: FidelitySpec::Exact,
            scheduling: SchedulingSpec::EventDriven,
            adversary: Some(AdversaryCell {
                spec: AdversarySpec::Policy(JamPolicy::Never),
                p_jam: 0.0,
            }),
            probe: Some(ProbeSpec {
                sinks: vec![SinkSpec::Events],
            }),
            max_slots: Some(100_000),
            seed: 7,
            trials: 4,
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = quick_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn cache_key_ignores_json_field_order() {
        // The same run described twice with object fields in different
        // orders must parse to equal specs and hash to equal keys.
        let a = r#"{
            "protocol": {"Uniform": {"attempts": 1}},
            "workload": {"Batch": {"n": 4, "w": 16}},
            "fidelity": "Exact",
            "scheduling": "EventDriven",
            "adversary": null,
            "probe": null,
            "max_slots": null,
            "seed": 42,
            "trials": 10
        }"#;
        let b = r#"{
            "trials": 10,
            "seed": 42,
            "max_slots": null,
            "probe": null,
            "adversary": null,
            "scheduling": "EventDriven",
            "fidelity": "Exact",
            "workload": {"Batch": {"w": 16, "n": 4}},
            "protocol": {"Uniform": {"attempts": 1}}
        }"#;
        let sa: ExperimentSpec = serde_json::from_str(a).unwrap();
        let sb: ExperimentSpec = serde_json::from_str(b).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(cache_key(&sa, "v1"), cache_key(&sb, "v1"));
    }

    #[test]
    fn cache_key_tracks_semantic_fields_and_code_version() {
        let base = quick_spec();
        let key = cache_key(&base, "v1");

        let mut seed = base.clone();
        seed.seed += 1;
        assert_ne!(cache_key(&seed, "v1"), key, "seed must be semantic");

        let mut jam = base.clone();
        jam.adversary.as_mut().unwrap().p_jam = 0.25;
        assert_ne!(cache_key(&jam, "v1"), key, "p_jam must be semantic");

        let mut fid = base.clone();
        fid.fidelity = FidelitySpec::Cohort;
        assert_ne!(cache_key(&fid, "v1"), key, "fidelity must be semantic");

        assert_ne!(cache_key(&base, "v2"), key, "code version must invalidate");
    }

    #[test]
    fn cache_key_fixture_is_pinned() {
        // Regression pin: a change here means every existing on-disk
        // cache silently invalidates. Bump deliberately, not by accident.
        let spec = ExperimentSpec {
            protocol: ProtocolSpec::Uniform { attempts: 1 },
            workload: WorkloadSpec::Batch { n: 4, w: 16 },
            fidelity: FidelitySpec::Exact,
            scheduling: SchedulingSpec::EventDriven,
            adversary: None,
            probe: None,
            max_slots: None,
            seed: 42,
            trials: 10,
        };
        assert_eq!(
            cache_key(&spec, "fixture"),
            "2fdd4da5b233ba3fb343a3691d69ce6fe30eee3e6d6216cb431ee08371a620d2"
        );
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let mut s = quick_spec();
        s.trials = 0;
        assert!(s.validate().is_err());

        let mut s = quick_spec();
        s.protocol = ProtocolSpec::Aligned {
            lambda: 1,
            tau: 3,
            min_class: 1,
        };
        assert!(s.validate().is_err(), "non-power-of-two tau");

        let mut s = quick_spec();
        s.protocol = ProtocolSpec::Aloha { p: 1.5 };
        assert!(s.validate().is_err());

        // Aligned on an unaligned workload fails at run time with a typed
        // error, not a panic.
        let mut s = quick_spec();
        s.workload = WorkloadSpec::Batch { n: 4, w: 12 };
        match run_spec(&s) {
            Err(RunSpecError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn run_spec_is_deterministic_and_emits_events() {
        let spec = quick_spec();
        let a = run_spec(&spec).unwrap();
        let b = run_spec(&spec).unwrap();
        assert_eq!(
            serde_json::to_string(&a.report.deterministic_view()).unwrap(),
            serde_json::to_string(&b.report.deterministic_view()).unwrap(),
            "deterministic view must be a pure function of the spec"
        );
        assert!(
            !a.events.is_empty(),
            "probe-configured spec must yield trial-0 events"
        );
        assert!(a.report.rows.iter().any(|r| r.metric == "job_success_rate"));
    }

    #[test]
    fn cancellation_surfaces_as_run_error() {
        let spec = ExperimentSpec {
            trials: 64,
            ..quick_spec()
        };
        let cancel = CancelToken::new();
        cancel.cancel();
        match run_spec_with(&spec, |_, _| {}, &cancel) {
            Err(RunSpecError::Run(RunError::Cancelled { .. })) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }
}
