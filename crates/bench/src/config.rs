//! Experiment configuration shared by every module.

/// Knobs common to all experiments.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Master seed: every experiment derives all randomness from this, so
    /// a printed seed replays the full suite bit-for-bit.
    pub seed: u64,
    /// Baseline Monte-Carlo trial count (experiments scale it per cell).
    pub trials: u64,
    /// Quick mode: shrink sweeps and trial counts ~10× (used by tests and
    /// smoke runs; the shapes still show, the confidence intervals widen).
    pub quick: bool,
    /// Directory for probe artifacts (Perfetto traces etc.); set by the
    /// experiments binary's `--probe DIR` flag. Experiments that can emit
    /// a trace write one here; `None` skips the extra probed run.
    pub probe_dir: Option<std::path::PathBuf>,
}

impl ExpConfig {
    /// The default full-fidelity configuration.
    pub fn full() -> Self {
        Self {
            seed: 0x5eed_2020,
            trials: 400,
            quick: false,
            probe_dir: None,
        }
    }

    /// Quick mode for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            trials: 60,
            quick: true,
            ..Self::full()
        }
    }

    /// Trials for one sweep cell, scaled by quick mode.
    pub fn cell_trials(&self, full: u64) -> u64 {
        if self.quick {
            (full / 8).max(10)
        } else {
            full
        }
    }
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scales_down() {
        let q = ExpConfig::quick();
        assert!(q.cell_trials(400) < ExpConfig::full().cell_trials(400));
        assert!(q.cell_trials(8) >= 10);
    }
}
