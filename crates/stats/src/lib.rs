//! # dcr-stats — statistics for Monte-Carlo experiments
//!
//! Small statistical helpers used by the experiment harness: running
//! summaries, binomial proportion confidence intervals (Wilson score),
//! histograms and quantiles, ordinary least squares on log–log data (for
//! measuring polynomial failure-probability decay), ASCII/CSV table
//! rendering, and the structured [`ExperimentReport`] artifact schema
//! (JSON-archivable measurements with timing and provenance).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binomial;
pub mod bootstrap;
pub mod canon;
pub mod histogram;
pub mod regression;
pub mod report;
pub mod summary;
pub mod table;

pub use binomial::Proportion;
pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, BootstrapCi};
pub use canon::{canonical_string, canonicalize, content_hash, sha256_hex};
pub use histogram::{quantile, Histogram};
pub use regression::{linear_fit, loglog_slope, LinearFit};
pub use report::{CheckResult, ExperimentReport, MetricRow, Param, Provenance, Timing};
pub use summary::Summary;
pub use table::Table;
