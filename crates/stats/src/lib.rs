//! # dcr-stats — statistics for Monte-Carlo experiments
//!
//! Small, dependency-free statistical helpers used by the experiment
//! harness: running summaries, binomial proportion confidence intervals
//! (Wilson score), histograms and quantiles, ordinary least squares on
//! log–log data (for measuring polynomial failure-probability decay), and
//! ASCII/CSV table rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binomial;
pub mod bootstrap;
pub mod histogram;
pub mod regression;
pub mod summary;
pub mod table;

pub use binomial::Proportion;
pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, BootstrapCi};
pub use histogram::{quantile, Histogram};
pub use regression::{linear_fit, loglog_slope, LinearFit};
pub use summary::Summary;
pub use table::Table;
