//! Fixed-bin histograms and exact quantiles.

use serde::{Deserialize, Serialize};

/// A fixed-width-bin histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Absorb a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Samples below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total samples including out-of-range.
    pub fn total(&self) -> u64 {
        self.below + self.above + self.bins.iter().sum::<u64>()
    }

    /// The `[start, end)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// A compact one-line ASCII sparkline of the in-range bins.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0);
        self.bins
            .iter()
            .map(|&c| GLYPHS[(c * 7).checked_div(max).unwrap_or(0) as usize])
            .collect()
    }
}

/// Exact quantile `q ∈ [0, 1]` of the samples, by sorting a copy.
/// Uses the nearest-rank method; `None` for an empty slice.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q));
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.bin(1), 2);
        assert_eq!(h.bin(9), 1);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn bin_ranges() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.5), Some(50.0));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(100.0));
        assert_eq!(quantile(&xs, 0.99), Some(99.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn sparkline_monotone() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for i in 0..4 {
            for _ in 0..=i {
                h.push(i as f64 + 0.5);
            }
        }
        let s: Vec<char> = h.sparkline().chars().collect();
        assert_eq!(s.len(), 4);
        assert!(s[3] > s[0]);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert!(h.is_empty());
        assert_eq!(h.sparkline().chars().count(), 3);
    }
}
