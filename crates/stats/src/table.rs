//! ASCII table and CSV rendering for experiment output.

/// A simple column-aligned table builder.
///
/// ```
/// use dcr_stats::Table;
/// let mut t = Table::new(vec!["w", "failure rate"]);
/// t.row(vec!["64".into(), "0.0312".into()]);
/// t.row(vec!["128".into(), "0.0071".into()]);
/// let s = t.render();
/// assert!(s.contains("failure rate"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Attach a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.3e}")
    } else if x.fract() == 0.0 && x.abs() < 1e9 {
        format!("{x:.0}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("a"));
        assert!(lines[0].contains("long_header"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn title_rendered_first() {
        let t = Table::new(vec!["x"]).with_title("E1: contention");
        assert!(t.render().starts_with("E1: contention\n"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(0.5), "0.5000");
        assert!(fnum(1e-6).contains('e'));
        assert!(fnum(1.5e9).contains('e'));
    }
}
