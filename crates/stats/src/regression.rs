//! Ordinary least squares, specialized for log–log decay measurement.
//!
//! The paper's central guarantee is that failure probability decays
//! *polynomially* in the window size: `Pr[fail] ≤ 1/w^Θ(λ)`. Empirically
//! that is a straight line with negative slope on log–log axes;
//! [`loglog_slope`] fits it and reports the exponent.

use serde::{Deserialize, Serialize};

/// Result of a simple linear fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Number of points used.
    pub n: usize,
}

/// Ordinary least squares over `(x, y)` pairs. Returns `None` with fewer
/// than two distinct x values.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
        n,
    })
}

/// Fit `log(y) ≈ a + b·log(x)` over points with `x > 0` and `y > 0`,
/// returning the fit on the transformed axes. The returned `slope` is the
/// polynomial exponent: `y ∝ x^slope`.
///
/// Points with `y == 0` (e.g. "no failures observed at this window size")
/// are replaced by `floor_y` if provided — a standard censoring device so a
/// string of zero counts doesn't silently drop the most informative points —
/// or skipped when `floor_y` is `None`.
pub fn loglog_slope(points: &[(f64, f64)], floor_y: Option<f64>) -> Option<LinearFit> {
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .filter_map(|&(x, y)| {
            if x <= 0.0 {
                return None;
            }
            let y = if y > 0.0 { y } else { floor_y? };
            Some((x.ln(), y.ln()))
        })
        .collect();
    linear_fit(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn power_law_recovered() {
        // y = 5 x^{-2}
        let pts: Vec<(f64, f64)> = [2.0f64, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&x| (x, 5.0 * x.powi(-2)))
            .collect();
        let f = loglog_slope(&pts, None).unwrap();
        assert!((f.slope + 2.0).abs() < 1e-9, "slope={}", f.slope);
        assert!((f.intercept - 5.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn zero_y_censoring() {
        let pts = vec![(2.0, 0.1), (4.0, 0.01), (8.0, 0.0)];
        // Without a floor the zero point is dropped.
        assert_eq!(loglog_slope(&pts, None).unwrap().n, 2);
        // With a floor it participates.
        assert_eq!(loglog_slope(&pts, Some(1e-4)).unwrap().n, 3);
    }

    #[test]
    fn noisy_fit_r2_below_one() {
        let pts = vec![(1.0, 1.1), (2.0, 1.9), (3.0, 3.2), (4.0, 3.8)];
        let f = linear_fit(&pts).unwrap();
        assert!(f.r2 > 0.9 && f.r2 < 1.0);
    }
}
