//! Canonical JSON and content addressing.
//!
//! The experiment server caches finished results keyed by a hash of
//! `(spec, code-version)`. For that key to be *stable*, two JSON documents
//! that describe the same run must hash identically even when their object
//! fields arrive in different orders — so hashing operates on a
//! **canonical form**: object keys sorted recursively (byte-wise), arrays
//! kept in order (order is semantic there), rendered compactly with the
//! same escaping rules `serde_json::to_string` uses. The hash itself is
//! SHA-256, implemented here directly because this workspace vendors its
//! dependencies and carries no crypto crate; FIPS 180-4, ~60 lines, with
//! the standard test vectors pinned below.
//!
//! What canonicalization deliberately does **not** do: normalize numbers
//! across representations (`1` vs `1.0` differ) or resolve serde defaults
//! (an omitted optional field differs from an explicit `null`). Cache keys
//! are computed from the canonical form of the *re-serialized, typed* spec
//! — parse first, then hash — so those surface differences collapse before
//! hashing. See `ExperimentSpec::cache_key` in `dcr-bench`.

use serde::Value;

/// Recursively sort every object's keys (byte-wise ascending, duplicates
/// keeping their relative order) so that field order no longer carries
/// information. Arrays are untouched: element order is semantic.
pub fn canonicalize(v: &mut Value) {
    match v {
        Value::Object(pairs) => {
            for (_, val) in pairs.iter_mut() {
                canonicalize(val);
            }
            pairs.sort_by(|(a, _), (b, _)| a.as_bytes().cmp(b.as_bytes()));
        }
        Value::Array(items) => {
            for item in items {
                canonicalize(item);
            }
        }
        _ => {}
    }
}

/// Render `v` in canonical form: keys sorted via [`canonicalize`], compact
/// JSON. The input is cloned, not mutated.
pub fn canonical_string(v: &Value) -> String {
    let mut sorted = v.clone();
    canonicalize(&mut sorted);
    sorted.to_string()
}

/// SHA-256 of `data`, as a lowercase hex string.
pub fn sha256_hex(data: &[u8]) -> String {
    let digest = sha256(data);
    let mut out = String::with_capacity(64);
    for byte in digest {
        use std::fmt::Write;
        let _ = write!(out, "{byte:02x}");
    }
    out
}

/// Content-address a value: SHA-256 over its canonical JSON rendering.
pub fn content_hash(v: &Value) -> String {
    sha256_hex(canonical_string(v).as_bytes())
}

/// SHA-256 (FIPS 180-4) over a byte slice.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Pad: message ‖ 0x80 ‖ zeros ‖ 64-bit big-endian bit length, to a
    // multiple of 64 bytes.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                chunk[4 * i],
                chunk[4 * i + 1],
                chunk[4 * i + 2],
                chunk[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::value::Number;

    // FIPS 180-4 / RFC 6234 test vectors.
    #[test]
    fn sha256_standard_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Exercise multi-block padding: exactly 64 bytes forces a second
        // block holding only padding + length.
        assert_eq!(
            sha256_hex(&[b'a'; 64]),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn canonicalization_sorts_keys_recursively() {
        let v = Value::Object(vec![
            (
                "z".into(),
                Value::Object(vec![
                    ("b".into(), Value::Number(Number::U(2))),
                    ("a".into(), Value::Number(Number::U(1))),
                ]),
            ),
            ("a".into(), Value::Bool(true)),
        ]);
        assert_eq!(canonical_string(&v), r#"{"a":true,"z":{"a":1,"b":2}}"#);
    }

    #[test]
    fn array_order_is_preserved() {
        let v = Value::Array(vec![
            Value::Number(Number::U(3)),
            Value::Number(Number::U(1)),
            Value::Number(Number::U(2)),
        ]);
        assert_eq!(canonical_string(&v), "[3,1,2]");
    }

    #[test]
    fn field_order_does_not_change_the_hash() {
        let ab = Value::Object(vec![
            ("alpha".into(), Value::Number(Number::U(7))),
            ("beta".into(), Value::String("x".into())),
        ]);
        let ba = Value::Object(vec![
            ("beta".into(), Value::String("x".into())),
            ("alpha".into(), Value::Number(Number::U(7))),
        ]);
        assert_eq!(content_hash(&ab), content_hash(&ba));
    }

    #[test]
    fn semantic_change_changes_the_hash() {
        let a = Value::Object(vec![("seed".into(), Value::Number(Number::U(1)))]);
        let b = Value::Object(vec![("seed".into(), Value::Number(Number::U(2)))]);
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn canonicalize_does_not_mutate_input() {
        let v = Value::Object(vec![("b".into(), Value::Null), ("a".into(), Value::Null)]);
        let _ = canonical_string(&v);
        assert_eq!(v.as_object().unwrap()[0].0, "b");
    }
}
