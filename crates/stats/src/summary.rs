//! Running univariate summaries (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// A numerically stable running summary of a stream of `f64` samples.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorb one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Build a summary from an iterator. (Deliberately an inherent method
    /// rather than the `FromIterator` trait so call sites read
    /// `Summary::from_iter(..)` without an import.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }

    /// Sample count.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` when `n < 2`).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Minimum sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let e = Summary::new();
        assert!(e.mean().is_nan());
        let mut s = Summary::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert!(s.variance().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let full = Summary::from_iter(xs.iter().copied());
        let mut a = Summary::from_iter(xs[..37].iter().copied());
        let b = Summary::from_iter(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.n(), full.n());
        assert!((a.mean() - full.mean()).abs() < 1e-9);
        assert!((a.variance() - full.variance()).abs() < 1e-9);
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_iter([1.0, 2.0]);
        let before = s.mean();
        s.merge(&Summary::new());
        assert_eq!(s.mean(), before);
        let mut e = Summary::new();
        e.merge(&Summary::from_iter([1.0, 2.0]));
        assert_eq!(e.n(), 2);
    }
}
