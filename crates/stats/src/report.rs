//! Structured experiment artifacts: a serializable schema for one
//! experiment's measurements, checks, timing, and run provenance.
//!
//! Every experiment in the harness renders a human-readable text table
//! *and* an [`ExperimentReport`] — the same numbers, machine-readable, so
//! runs can be archived, diffed, and regression-tracked. The schema is
//! deliberately flat: a list of [`MetricRow`]s (one measured quantity per
//! sweep cell, with a confidence interval when the quantity is a Monte
//! Carlo estimate), a list of pass/fail [`CheckResult`]s (the paper-claim
//! assertions the text output prints as "violations: 0/N"), wall-clock
//! [`Timing`] with slot throughput, and [`Provenance`] identifying the
//! code and toolchain that produced the numbers.
//!
//! Timing and provenance vary between runs of identical code; everything
//! else is a pure function of `(experiment, seed, parameters)`. Determinism
//! comparisons must therefore use [`ExperimentReport::deterministic_view`],
//! which strips the volatile fields.

use serde::{Deserialize, Serialize};

/// Version of the artifact schema; bump on breaking layout changes.
pub const SCHEMA_VERSION: u32 = 1;

/// One measured metric in one sweep cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRow {
    /// Sweep-cell label, e.g. `"C=1.0"` or `"w=2^12,n=8"`.
    pub cell: String,
    /// Metric name, e.g. `"p_success"` or `"mean_latency"`.
    pub metric: String,
    /// Point estimate (or exact value for deterministic quantities).
    pub value: f64,
    /// Lower 95% confidence bound, when the metric is a Monte-Carlo
    /// estimate (Wilson score for proportions).
    pub ci_lo: Option<f64>,
    /// Upper 95% confidence bound.
    pub ci_hi: Option<f64>,
    /// Sample count behind the estimate (trials or slots), when sampled.
    pub n: Option<u64>,
}

/// One named experiment parameter, stringly typed so a single list covers
/// integers, floats, grids, and mode flags without a tagged union.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name, e.g. `"trials"` or `"lambda_grid"`.
    pub name: String,
    /// Rendered value, e.g. `"400"` or `"[1, 2, 4, 8]"`.
    pub value: String,
}

/// A pass/fail claim check (the structured form of the text output's
/// "bound violations: 0/11 (expected 0)" lines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckResult {
    /// Check name, e.g. `"lemma2_sandwich"`.
    pub name: String,
    /// Did the claim hold?
    pub passed: bool,
    /// Human-readable detail, e.g. `"violations 0/11"`.
    pub detail: String,
}

/// Wall-clock and throughput instrumentation for one experiment run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timing {
    /// Total wall-clock seconds for the experiment.
    pub wall_secs: f64,
    /// Monte-Carlo trials executed (0 for purely arithmetic experiments).
    pub trials: u64,
    /// Mean wall-clock seconds per trial (0 when `trials == 0`).
    pub secs_per_trial: f64,
    /// Channel slots simulated across all trials (as reported by the
    /// experiment; 0 when not tracked).
    pub slots_simulated: u64,
    /// Slot throughput `slots_simulated / wall_secs` (0 when untracked).
    pub slots_per_sec: f64,
}

/// Identity of the code and environment that produced a report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Provenance {
    /// `git rev-parse HEAD` of the working tree, if available.
    pub git_rev: Option<String>,
    /// Whether the working tree had uncommitted changes, if known.
    pub git_dirty: Option<bool>,
    /// `rustc --version` of the toolchain, if available.
    pub rustc_version: Option<String>,
    /// Worker threads the Monte-Carlo runner uses — the machine's
    /// available parallelism unless the producer recorded an explicit
    /// override (e.g. a `--threads` flag) via
    /// [`Provenance::capture_with_threads`].
    pub threads: u64,
}

impl Provenance {
    /// Capture provenance from the current environment. Each field is
    /// best-effort: a missing `git` or `rustc` binary (or not running
    /// inside a repository) yields `None`, never an error.
    pub fn capture() -> Self {
        let run = |cmd: &str, args: &[&str]| -> Option<String> {
            let out = std::process::Command::new(cmd).args(args).output().ok()?;
            out.status
                .success()
                .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
        };
        let git_rev = run("git", &["rev-parse", "HEAD"]).filter(|s| !s.is_empty());
        let git_dirty = git_rev
            .is_some()
            .then(|| run("git", &["status", "--porcelain"]).map(|s| !s.is_empty()))
            .flatten();
        let rustc_version = run("rustc", &["--version"]).filter(|s| !s.is_empty());
        let threads = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        Self {
            git_rev,
            git_dirty,
            rustc_version,
            threads,
        }
    }

    /// [`Provenance::capture`], but recording an explicit worker-thread
    /// count instead of the machine's available parallelism — use when a
    /// `--threads` override is in effect, so artifacts produced on
    /// heterogeneous CI machines stay comparable.
    pub fn capture_with_threads(threads: u64) -> Self {
        Self {
            threads,
            ..Self::capture()
        }
    }
}

/// A complete structured artifact for one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Artifact schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment id, e.g. `"e1"`.
    pub experiment: String,
    /// One-line human title, e.g. `"E1 (Lemma 2): contention vs success"`.
    pub title: String,
    /// Master seed the run derived all randomness from.
    pub seed: u64,
    /// Quick (reduced-fidelity) mode?
    pub quick: bool,
    /// Full parameter set of the run (sweep grids, trial counts, knobs).
    pub params: Vec<Param>,
    /// Per-cell measurements.
    pub rows: Vec<MetricRow>,
    /// Claim checks.
    pub checks: Vec<CheckResult>,
    /// Wall-clock / throughput instrumentation (volatile across runs).
    pub timing: Timing,
    /// Code and environment identity (volatile across machines).
    pub provenance: Provenance,
}

impl ExperimentReport {
    /// True iff every [`CheckResult`] passed.
    pub fn all_checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Look up the first row matching `cell` and `metric`.
    pub fn row(&self, cell: &str, metric: &str) -> Option<&MetricRow> {
        self.rows
            .iter()
            .find(|r| r.cell == cell && r.metric == metric)
    }

    /// A copy with the volatile fields ([`Timing`], [`Provenance`])
    /// zeroed: two runs of the same experiment with the same seed must
    /// produce *equal* deterministic views, while their timing and
    /// provenance may differ. Use this (not the full report) for
    /// reproducibility comparisons.
    pub fn deterministic_view(&self) -> Self {
        Self {
            timing: Timing::default(),
            provenance: Provenance::default(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        ExperimentReport {
            schema_version: SCHEMA_VERSION,
            experiment: "e1".into(),
            title: "E1: demo".into(),
            seed: 42,
            quick: true,
            params: vec![Param {
                name: "slots".into(),
                value: "4000".into(),
            }],
            rows: vec![MetricRow {
                cell: "C=1.0".into(),
                metric: "p_success".into(),
                value: 0.37,
                ci_lo: Some(0.35),
                ci_hi: Some(0.39),
                n: Some(4000),
            }],
            checks: vec![CheckResult {
                name: "lemma2_sandwich".into(),
                passed: true,
                detail: "violations 0/11".into(),
            }],
            timing: Timing {
                wall_secs: 1.5,
                trials: 100,
                secs_per_trial: 0.015,
                slots_simulated: 44_000,
                slots_per_sec: 29_333.3,
            },
            provenance: Provenance {
                git_rev: Some("abc123".into()),
                git_dirty: Some(false),
                rustc_version: Some("rustc 1.75.0".into()),
                threads: 8,
            },
        }
    }

    #[test]
    fn checks_and_row_lookup() {
        let r = sample();
        assert!(r.all_checks_passed());
        assert_eq!(r.row("C=1.0", "p_success").unwrap().value, 0.37);
        assert!(r.row("C=1.0", "nope").is_none());
    }

    #[test]
    fn deterministic_view_strips_volatile_fields_only() {
        let r = sample();
        let v = r.deterministic_view();
        assert_eq!(v.timing, Timing::default());
        assert_eq!(v.provenance, Provenance::default());
        assert_eq!(v.rows, r.rows);
        assert_eq!(v.params, r.params);
        assert_eq!(v.checks, r.checks);
        assert_eq!(v.seed, r.seed);
    }

    #[test]
    fn provenance_capture_is_best_effort() {
        let p = Provenance::capture();
        assert!(p.threads >= 1);
        // git/rustc may or may not exist in the environment; the call must
        // simply not fail. If a rev was found it looks like a hex hash.
        if let Some(rev) = &p.git_rev {
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }
}
