//! Bootstrap confidence intervals for arbitrary statistics of Monte-Carlo
//! samples.
//!
//! Wilson intervals (see [`crate::binomial`]) cover proportions; for means
//! of skewed quantities — makespans, latencies, slot usage — percentile
//! bootstrap is the robust default. Deterministic given the seed, like
//! everything else in this workspace.

/// A percentile-bootstrap interval around a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of resamples used.
    pub resamples: u32,
}

/// Minimal deterministic xorshift for resampling indices (keeps `dcr-stats`
/// free of the rand dependency).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Percentile bootstrap of `stat` over `samples` at confidence
/// `1 − alpha` (e.g. `alpha = 0.05` for 95%). Returns `None` for an empty
/// sample.
pub fn bootstrap_ci<F>(
    samples: &[f64],
    resamples: u32,
    alpha: f64,
    seed: u64,
    stat: F,
) -> Option<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    if samples.is_empty() {
        return None;
    }
    assert!(alpha > 0.0 && alpha < 1.0);
    let point = stat(samples);
    let mut rng = XorShift::new(seed);
    let mut stats: Vec<f64> = Vec::with_capacity(resamples as usize);
    let mut resample = vec![0.0; samples.len()];
    for _ in 0..resamples {
        for r in resample.iter_mut() {
            *r = samples[rng.below(samples.len())];
        }
        stats.push(stat(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN statistic"));
    let idx = |q: f64| -> f64 {
        let rank = (q * stats.len() as f64).floor() as usize;
        stats[rank.min(stats.len() - 1)]
    };
    Some(BootstrapCi {
        point,
        lo: idx(alpha / 2.0),
        hi: idx(1.0 - alpha / 2.0),
        resamples,
    })
}

/// 95% bootstrap interval of the mean.
pub fn bootstrap_mean_ci(samples: &[f64], seed: u64) -> Option<BootstrapCi> {
    bootstrap_ci(samples, 1000, 0.05, seed, |xs| {
        xs.iter().sum::<f64>() / xs.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_interval_contains_point() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let ci = bootstrap_mean_ci(&xs, 7).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        // For this tight sample the interval is narrow around ~8.
        assert!(ci.lo > 7.0 && ci.hi < 9.0, "{ci:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sqrt()).collect();
        let a = bootstrap_mean_ci(&xs, 3).unwrap();
        let b = bootstrap_mean_ci(&xs, 3).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&xs, 4).unwrap();
        assert!(
            a.lo != c.lo || a.hi != c.hi,
            "different seeds should differ"
        );
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(bootstrap_mean_ci(&[], 1).is_none());
    }

    #[test]
    fn custom_statistic_median() {
        let xs = vec![1.0, 2.0, 3.0, 100.0];
        let ci = bootstrap_ci(&xs, 500, 0.1, 11, |s| {
            let mut v = s.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        })
        .unwrap();
        // The median is robust to the outlier.
        assert!(ci.point <= 3.0);
    }

    #[test]
    fn wider_alpha_narrows_interval() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let wide = bootstrap_ci(&xs, 800, 0.01, 5, |s| {
            s.iter().sum::<f64>() / s.len() as f64
        })
        .unwrap();
        let narrow =
            bootstrap_ci(&xs, 800, 0.5, 5, |s| s.iter().sum::<f64>() / s.len() as f64).unwrap();
        assert!(narrow.hi - narrow.lo < wide.hi - wide.lo);
    }
}
