//! Binomial proportions with Wilson score confidence intervals.
//!
//! Experiment tables report empirical success/failure probabilities; the
//! Wilson interval behaves sensibly even at the extremes (0 or all
//! successes), which matters because the paper's high-probability events
//! often succeed in *every* trial at moderate window sizes.

use serde::{Deserialize, Serialize};

/// An observed proportion `hits / trials` with interval estimates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Proportion {
    /// Number of positive observations.
    pub hits: u64,
    /// Number of trials.
    pub trials: u64,
}

impl Proportion {
    /// Construct; panics if `hits > trials`.
    pub fn new(hits: u64, trials: u64) -> Self {
        assert!(hits <= trials, "hits {hits} > trials {trials}");
        Self { hits, trials }
    }

    /// The point estimate (`NaN` for zero trials).
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            f64::NAN
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// The complement proportion (failures).
    pub fn complement(&self) -> Proportion {
        Proportion::new(self.trials - self.hits, self.trials)
    }

    /// Wilson score interval at normal quantile `z` (1.96 ≈ 95%).
    pub fn wilson(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.estimate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// 95% Wilson interval.
    pub fn wilson95(&self) -> (f64, f64) {
        self.wilson(1.959_963_985)
    }

    /// Upper 95% bound on the true probability when zero hits were seen
    /// ("rule of three": ≈ 3/n), otherwise the Wilson upper bound.
    pub fn upper95(&self) -> f64 {
        if self.hits == 0 && self.trials > 0 {
            (3.0 / self.trials as f64).min(1.0)
        } else {
            self.wilson95().1
        }
    }
}

impl std::fmt::Display for Proportion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (lo, hi) = self.wilson95();
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] ({}/{})",
            self.estimate(),
            lo,
            hi,
            self.hits,
            self.trials
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate() {
        assert!((Proportion::new(25, 100).estimate() - 0.25).abs() < 1e-12);
        assert!(Proportion::new(0, 0).estimate().is_nan());
    }

    #[test]
    fn wilson_contains_estimate_and_orders() {
        let p = Proportion::new(30, 100);
        let (lo, hi) = p.wilson95();
        assert!(lo < p.estimate() && p.estimate() < hi);
        assert!(lo > 0.2 && hi < 0.42, "({lo}, {hi})");
    }

    #[test]
    fn wilson_extremes_stay_in_unit_interval() {
        let zero = Proportion::new(0, 50);
        let (lo, hi) = zero.wilson95();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.12);
        let all = Proportion::new(50, 50);
        let (lo, hi) = all.wilson95();
        assert!(lo > 0.88 && lo < 1.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn rule_of_three() {
        let p = Proportion::new(0, 1000);
        assert!((p.upper95() - 0.003).abs() < 1e-12);
        // Non-zero hits fall back to Wilson.
        assert!(Proportion::new(1, 1000).upper95() > 0.001);
    }

    #[test]
    fn narrower_with_more_trials() {
        let small = Proportion::new(5, 10).wilson95();
        let large = Proportion::new(500, 1000).wilson95();
        assert!(large.1 - large.0 < small.1 - small.0);
    }

    #[test]
    fn complement_flips() {
        let p = Proportion::new(30, 100);
        assert_eq!(p.complement().hits, 70);
    }

    #[test]
    #[should_panic(expected = "hits")]
    fn invalid_counts_rejected() {
        let _ = Proportion::new(5, 3);
    }
}
