//! Exact γ-slack feasibility checking.
//!
//! The paper (Section 1.1): an instance is **γ-slack feasible** if "even if
//! we multiply the length of each message by a constant `1/γ`, it should be
//! feasible to broadcast each message by its deadline" — i.e. the job set,
//! with every job inflated to `L = ⌈1/γ⌉` slots of work, admits a schedule
//! on the single channel meeting all deadlines.
//!
//! On one machine with release times and deadlines, **preemptive EDF is an
//! optimal feasibility test**: a feasible schedule exists iff EDF produces
//! one. We simulate preemptive EDF event-by-event (never slot-by-slot), so
//! the check runs in `O(n log n)` regardless of how large the windows are.
//!
//! Using the *preemptive* relaxation is the right reading of the paper's
//! definition: slack feasibility is a bandwidth statement ("only using a
//! constant γ fraction of the available channel bandwidth"), and all the
//! paper's lemmas only ever *consume* the resulting density bound — at most
//! `γ·|I|` windows nested in any interval `I`.

use dcr_sim::job::JobSpec;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Can the jobs, each inflated to `job_len` slots of (preemptible) work, be
/// scheduled on one channel meeting every deadline?
///
/// Runs preemptive EDF over release/deadline events. `job_len == 1`
/// answers plain feasibility; `job_len == ⌈1/γ⌉` answers γ-slack
/// feasibility.
pub fn edf_feasible(jobs: &[JobSpec], job_len: u64) -> bool {
    assert!(job_len >= 1, "job_len must be at least 1");
    // Quick necessary condition: each job individually fits its window.
    if jobs.iter().any(|j| j.window() < job_len) {
        return false;
    }

    // Sort by release; sweep time forward, keeping a heap of released,
    // unfinished jobs ordered by deadline (min-heap via Reverse).
    let mut order: Vec<&JobSpec> = jobs.iter().collect();
    order.sort_by_key(|j| j.release);

    // Heap entries: (deadline, remaining_work).
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut now: u64 = 0;
    let mut next = 0usize;

    while next < order.len() || !heap.is_empty() {
        if heap.is_empty() {
            // Idle: jump to the next arrival.
            now = now.max(order[next].release);
        }
        // Admit everything released by `now`. This guarantees that any
        // remaining arrival is strictly in the future, so each loop
        // iteration advances `now` — no livelock.
        while next < order.len() && order[next].release <= now {
            let job = order[next];
            heap.push(Reverse((job.deadline, job_len)));
            next += 1;
        }
        let Reverse((deadline, remaining)) = heap.pop().expect("heap non-empty here");
        // Preemptive EDF is optimal, so if the earliest-deadline job cannot
        // finish even running uninterrupted from `now`, no schedule exists.
        if now + remaining > deadline {
            return false;
        }
        let next_arrival = if next < order.len() {
            order[next].release
        } else {
            u64::MAX
        };
        let finish = now + remaining;
        if finish <= next_arrival {
            // Runs to completion before anything new can preempt it.
            now = finish;
        } else {
            // Preempted (or re-examined) at the next arrival.
            heap.push(Reverse((deadline, remaining - (next_arrival - now))));
            now = next_arrival;
        }
    }
    true
}

/// Is the instance γ-slack feasible (paper Section 1.1)?
///
/// `gamma` must be in `(0, 1]`. Messages are inflated to `⌈1/γ⌉` slots.
pub fn is_gamma_slack_feasible(jobs: &[JobSpec], gamma: f64) -> bool {
    assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
    let job_len = (1.0 / gamma).ceil() as u64;
    edf_feasible(jobs, job_len)
}

/// The largest integer `L` such that the instance remains feasible with all
/// messages inflated to length `L` — i.e. the instance is `(1/L)`-slack
/// feasible and no better. Returns `None` for an infeasible (even at unit
/// length) or empty instance.
pub fn measured_slack(jobs: &[JobSpec]) -> Option<u64> {
    if jobs.is_empty() || !edf_feasible(jobs, 1) {
        return None;
    }
    // Upper bound: no job can be inflated beyond its own window.
    let cap = jobs.iter().map(|j| j.window()).min().unwrap();
    // Binary search the (monotone) feasibility frontier.
    let (mut lo, mut hi) = (1u64, cap);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if edf_feasible(jobs, mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// Brute-force feasibility via Hall's condition, for cross-checking the EDF
/// sweep in tests: feasible iff for every interval `[s, t)` the total work
/// of jobs whose windows nest inside it is at most `t - s`.
///
/// `O(n^2)` over candidate intervals (release × deadline pairs); exact for
/// the preemptive single-machine problem.
pub fn hall_feasible(jobs: &[JobSpec], job_len: u64) -> bool {
    if jobs.iter().any(|j| j.window() < job_len) {
        return false;
    }
    let starts: Vec<u64> = jobs.iter().map(|j| j.release).collect();
    let ends: Vec<u64> = jobs.iter().map(|j| j.deadline).collect();
    for &s in &starts {
        for &t in &ends {
            if t <= s {
                continue;
            }
            let work: u64 = jobs
                .iter()
                .filter(|j| j.release >= s && j.deadline <= t)
                .count() as u64
                * job_len;
            if work > t - s {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(id: u32, r: u64, d: u64) -> JobSpec {
        JobSpec::new(id, r, d)
    }

    #[test]
    fn singleton_feasibility() {
        assert!(edf_feasible(&[j(0, 0, 4)], 1));
        assert!(edf_feasible(&[j(0, 0, 4)], 4));
        assert!(!edf_feasible(&[j(0, 0, 4)], 5));
    }

    #[test]
    fn overloaded_batch_infeasible() {
        // 5 unit jobs in a window of 4.
        let jobs: Vec<_> = (0..5).map(|i| j(i, 0, 4)).collect();
        assert!(!edf_feasible(&jobs, 1));
        let jobs4: Vec<_> = (0..4).map(|i| j(i, 0, 4)).collect();
        assert!(edf_feasible(&jobs4, 1));
    }

    #[test]
    fn staggered_jobs_feasible() {
        let jobs = vec![j(0, 0, 2), j(1, 1, 3), j(2, 2, 4), j(3, 3, 5)];
        assert!(edf_feasible(&jobs, 1));
        assert!(!edf_feasible(&jobs, 2));
    }

    #[test]
    fn nested_windows() {
        // Small windows inside a big one; EDF must prioritize the small.
        let jobs = vec![j(0, 0, 16), j(1, 4, 8), j(2, 4, 8)];
        assert!(edf_feasible(&jobs, 2));
        // Three 2-length jobs in [4,8) is too much.
        let jobs = vec![j(0, 4, 8), j(1, 4, 8), j(2, 4, 8)];
        assert!(!edf_feasible(&jobs, 2));
    }

    #[test]
    fn gamma_slack_wrapper() {
        let jobs: Vec<_> = (0..4).map(|i| j(i, 0, 64)).collect();
        assert!(is_gamma_slack_feasible(&jobs, 1.0 / 16.0)); // 4 × 16 = 64 fits
        assert!(!is_gamma_slack_feasible(&jobs, 1.0 / 17.0)); // 4 × 17 > 64
    }

    #[test]
    fn measured_slack_matches_construction() {
        let jobs: Vec<_> = (0..4).map(|i| j(i, 0, 64)).collect();
        assert_eq!(measured_slack(&jobs), Some(16));
        let tight: Vec<_> = (0..64).map(|i| j(i, 0, 64)).collect();
        assert_eq!(measured_slack(&tight), Some(1));
        let infeasible: Vec<_> = (0..65).map(|i| j(i, 0, 64)).collect();
        assert_eq!(measured_slack(&infeasible), None);
        assert_eq!(measured_slack(&[]), None);
    }

    #[test]
    fn edf_agrees_with_hall_on_small_cases() {
        // Deterministic small sweep (a proptest version lives in the crate's
        // property tests; this pins a few corners).
        let cases: Vec<(Vec<JobSpec>, u64)> = vec![
            (vec![j(0, 0, 3), j(1, 1, 4), j(2, 2, 5)], 1),
            (vec![j(0, 0, 3), j(1, 1, 4), j(2, 2, 5)], 2),
            (vec![j(0, 0, 8), j(1, 0, 8), j(2, 4, 8), j(3, 6, 8)], 2),
            (vec![j(0, 0, 10), j(1, 2, 6), j(2, 2, 6), j(3, 4, 8)], 2),
            (vec![j(0, 5, 9), j(1, 0, 20), j(2, 7, 9)], 2),
        ];
        for (jobs, len) in cases {
            assert_eq!(
                edf_feasible(&jobs, len),
                hall_feasible(&jobs, len),
                "jobs={jobs:?} len={len}"
            );
        }
    }

    #[test]
    fn large_sparse_instance_is_fast() {
        // Windows of a million slots each, far apart: event-driven sweep
        // must not iterate slot by slot.
        let jobs: Vec<_> = (0..1000u32)
            .map(|i| {
                j(
                    i,
                    u64::from(i) * 10_000_000,
                    u64::from(i) * 10_000_000 + 1_000_000,
                )
            })
            .collect();
        assert!(edf_feasible(&jobs, 1000));
    }

    #[test]
    fn empty_is_feasible() {
        assert!(edf_feasible(&[], 1));
        assert!(hall_feasible(&[], 1));
    }
}
