//! # dcr-workloads — deadline-window instances and their feasibility
//!
//! The guarantees in *Contention Resolution with Message Deadlines* quantify
//! over **γ-slack feasible** instances: job sets that could be scheduled by
//! their deadlines even if every unit message were inflated to length `1/γ`
//! (Section 1.1). This crate provides:
//!
//! * [`Instance`] — a named set of [`dcr_sim::job::JobSpec`]s;
//! * [`feasibility`] — an exact γ-slack feasibility checker built on
//!   preemptive earliest-deadline-first (optimal on one channel), plus a
//!   measured-slack search;
//! * [`generators`] — the instance families used by the paper's proofs and
//!   by our experiments: aligned multi-class instances, single batches, the
//!   harmonic starvation instance of Lemma 5, Poisson and bursty dynamic
//!   arrivals, and arbitrary unaligned mixes;
//! * [`adversarial`] — the recurring worst-case shapes from the
//!   adversarial-queuing literature (rolling harmonic bursts, laminar
//!   nests, staircases), plus attack-paired scenarios bundling an instance
//!   with the jamming adversary built to hurt it;
//! * [`transforms`] — window transforms: `trimmed()` (Lemma 15) and
//!   power-of-two rounding, with their guaranteed loss factors.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod feasibility;
pub mod generators;
pub mod instance;
pub mod transforms;

pub use feasibility::{edf_feasible, is_gamma_slack_feasible, measured_slack};
pub use instance::Instance;
