//! Adversarial instance families.
//!
//! The harmonic instance of Lemma 5 is one point in a family of
//! worst-case-flavoured workloads; this module provides the recurring
//! shapes used in the adversarial-queuing literature the paper cites
//! ([6, 13, 34, 35]) adapted to the deadline model:
//!
//! * [`rolling_harmonic`] — the Lemma 5 burst repeated over time, so
//!   protocols face a *sustained* stream of urgency gradients rather than
//!   a single batch;
//! * [`laminar`] — a perfectly nested (laminar) window family, the
//!   worst case for pecking-order deferral depth;
//! * [`staircase`] — windows whose releases march forward while deadlines
//!   stay put, maximizing the EDF pressure at the common deadline.

use crate::instance::Instance;
use dcr_sim::job::JobSpec;

/// The Lemma 5 harmonic burst (`w_j = j·inv_gamma`, all released together)
/// repeated every `period` slots, `bursts` times.
///
/// Feasible for the same reason the single burst is, provided
/// `period ≥ n·inv_gamma` (each burst's EDF schedule finishes before the
/// next burst arrives).
pub fn rolling_harmonic(n: usize, inv_gamma: u64, period: u64, bursts: usize) -> Instance {
    assert!(inv_gamma >= 1 && n >= 1 && bursts >= 1);
    assert!(
        period >= n as u64 * inv_gamma,
        "period must cover one burst's schedule for feasibility"
    );
    let mut jobs = Vec::with_capacity(n * bursts);
    for b in 0..bursts {
        let base = b as u64 * period;
        for j in 1..=n {
            jobs.push(JobSpec::new(0, base, base + j as u64 * inv_gamma));
        }
    }
    Instance::new(
        format!("rolling_harmonic(n={n},1/γ={inv_gamma},p={period}×{bursts})"),
        jobs,
    )
}

/// A laminar (perfectly nested) family: `depth` windows
/// `[0, s), [0, 2s), [0, 4s), …` each holding `per_level` jobs — every
/// job's window strictly contains all smaller ones, so pecking-order
/// deferral chains through every level.
pub fn laminar(depth: u32, smallest: u64, per_level: usize) -> Instance {
    assert!(depth >= 1 && smallest >= 1);
    let mut jobs = Vec::new();
    for level in 0..depth {
        let w = smallest << level;
        for _ in 0..per_level {
            jobs.push(JobSpec::new(0, 0, w));
        }
    }
    Instance::new(
        format!("laminar(depth={depth},s={smallest},k={per_level})"),
        jobs,
    )
}

/// A staircase: `n` jobs with releases `0, step, 2·step, …` all sharing
/// one common deadline — the latest arrival has the least room, and an
/// EDF-oblivious protocol that serves early arrivals first starves the
/// tail.
pub fn staircase(n: usize, step: u64, deadline: u64) -> Instance {
    assert!(n >= 1);
    assert!(
        deadline > (n as u64 - 1) * step,
        "last job must have a non-empty window"
    );
    let jobs = (0..n)
        .map(|i| JobSpec::new(0, i as u64 * step, deadline))
        .collect();
    Instance::new(format!("staircase(n={n},step={step},d={deadline})"), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_gamma_slack_feasible;

    #[test]
    fn rolling_harmonic_is_feasible() {
        let inst = rolling_harmonic(16, 4, 16 * 4, 5);
        assert_eq!(inst.n(), 80);
        assert!(is_gamma_slack_feasible(&inst.jobs, 0.25));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn rolling_harmonic_rejects_overlapping_bursts() {
        let _ = rolling_harmonic(16, 4, 10, 2);
    }

    #[test]
    fn laminar_nesting_structure() {
        let inst = laminar(4, 8, 2);
        assert_eq!(inst.n(), 8);
        let h = inst.window_histogram();
        assert_eq!(h[&8], 2);
        assert_eq!(h[&64], 2);
        // Laminar with power-of-two smallest is aligned.
        assert!(inst.is_aligned());
        // Feasibility: 8 jobs, tightest window 8 holds 2 of them; with
        // L = 2 the nested load is 2·2 in 8, then 4·2 in 16, ... fine:
        assert!(is_gamma_slack_feasible(&inst.jobs, 0.5));
    }

    #[test]
    fn staircase_windows_shrink() {
        let inst = staircase(5, 10, 100);
        assert_eq!(inst.jobs[0].window(), 100);
        assert_eq!(inst.jobs[4].window(), 60);
        assert!(is_gamma_slack_feasible(&inst.jobs, 1.0 / 8.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn staircase_rejects_impossible_tail() {
        let _ = staircase(11, 10, 100);
    }
}
