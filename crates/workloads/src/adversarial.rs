//! Adversarial instance families.
//!
//! The harmonic instance of Lemma 5 is one point in a family of
//! worst-case-flavoured workloads; this module provides the recurring
//! shapes used in the adversarial-queuing literature the paper cites
//! ([6, 13, 34, 35]) adapted to the deadline model:
//!
//! * [`rolling_harmonic`] — the Lemma 5 burst repeated over time, so
//!   protocols face a *sustained* stream of urgency gradients rather than
//!   a single batch;
//! * [`laminar`] — a perfectly nested (laminar) window family, the
//!   worst case for pecking-order deferral depth;
//! * [`staircase`] — windows whose releases march forward while deadlines
//!   stay put, maximizing the EDF pressure at the common deadline.
//!
//! Beyond instance *shapes*, the module pairs instances with the adversary
//! built to hurt them: an [`AttackScenario`] bundles an instance with a
//! serializable [`AdversarySpec`] and a `p_jam`, so experiments (E18's
//! stateful-adversary panel) and regression tests pull attack + workload
//! as one named unit instead of re-deriving the pairing ad hoc.

use crate::instance::Instance;
use dcr_sim::jamming::{AdversarySpec, JamPolicy, Jammer};
use dcr_sim::job::JobSpec;

/// The Lemma 5 harmonic burst (`w_j = j·inv_gamma`, all released together)
/// repeated every `period` slots, `bursts` times.
///
/// Feasible for the same reason the single burst is, provided
/// `period ≥ n·inv_gamma` (each burst's EDF schedule finishes before the
/// next burst arrives).
pub fn rolling_harmonic(n: usize, inv_gamma: u64, period: u64, bursts: usize) -> Instance {
    assert!(inv_gamma >= 1 && n >= 1 && bursts >= 1);
    assert!(
        period >= n as u64 * inv_gamma,
        "period must cover one burst's schedule for feasibility"
    );
    let mut jobs = Vec::with_capacity(n * bursts);
    for b in 0..bursts {
        let base = b as u64 * period;
        for j in 1..=n {
            jobs.push(JobSpec::new(0, base, base + j as u64 * inv_gamma));
        }
    }
    Instance::new(
        format!("rolling_harmonic(n={n},1/γ={inv_gamma},p={period}×{bursts})"),
        jobs,
    )
}

/// A laminar (perfectly nested) family: `depth` windows
/// `[0, s), [0, 2s), [0, 4s), …` each holding `per_level` jobs — every
/// job's window strictly contains all smaller ones, so pecking-order
/// deferral chains through every level.
pub fn laminar(depth: u32, smallest: u64, per_level: usize) -> Instance {
    assert!(depth >= 1 && smallest >= 1);
    let mut jobs = Vec::new();
    for level in 0..depth {
        let w = smallest << level;
        for _ in 0..per_level {
            jobs.push(JobSpec::new(0, 0, w));
        }
    }
    Instance::new(
        format!("laminar(depth={depth},s={smallest},k={per_level})"),
        jobs,
    )
}

/// A staircase: `n` jobs with releases `0, step, 2·step, …` all sharing
/// one common deadline — the latest arrival has the least room, and an
/// EDF-oblivious protocol that serves early arrivals first starves the
/// tail.
pub fn staircase(n: usize, step: u64, deadline: u64) -> Instance {
    assert!(n >= 1);
    assert!(
        deadline > (n as u64 - 1) * step,
        "last job must have a non-empty window"
    );
    let jobs = (0..n)
        .map(|i| JobSpec::new(0, i as u64 * step, deadline))
        .collect();
    Instance::new(format!("staircase(n={n},step={step},d={deadline})"), jobs)
}

/// An instance paired with the adversary built to attack it.
#[derive(Debug, Clone)]
pub struct AttackScenario {
    /// Short name for tables and artifact cells.
    pub name: String,
    /// The workload under attack.
    pub instance: Instance,
    /// The adversary configuration (serializable for artifacts).
    pub adversary: AdversarySpec,
    /// Jam success probability handed to the jammer.
    pub p_jam: f64,
}

impl AttackScenario {
    /// Instantiate the scenario's jammer (fresh adversary state per call,
    /// so Monte-Carlo trials stay independent).
    pub fn jammer(&self) -> Jammer {
        self.adversary.jammer(self.p_jam)
    }
}

/// The paper's "skew the estimate `n_ℓ`" attack, packaged: an aligned
/// batch of `n` jobs with window `2^class`, against a reactive jammer that
/// destroys the first `k` successes of every busy stretch it observes —
/// exactly the estimation pings that anchor each window.
pub fn estimation_skew_attack(class: u32, n: usize, k: u64, p_jam: f64) -> AttackScenario {
    AttackScenario {
        name: format!("skew(k={k})"),
        instance: crate::generators::batch(n, 1u64 << class),
        adversary: AdversarySpec::Reactive {
            k,
            // An estimation subphase never goes quiet for long while jobs
            // remain; a full window-scale silence marks a fresh phase.
            reset_gap: 1u64 << (class / 2),
        },
        p_jam,
    }
}

/// A finite-ammunition blitz against the Lemma 5 urgency gradient: the
/// rolling harmonic stream faces a budgeted jammer that, when `data_only`,
/// lets all coordination traffic through and spends its whole budget on
/// data deliveries.
pub fn budget_blitz_attack(
    n: usize,
    inv_gamma: u64,
    bursts: usize,
    budget: u64,
    data_only: bool,
    p_jam: f64,
) -> AttackScenario {
    let period = n as u64 * inv_gamma;
    AttackScenario {
        name: format!("blitz(B={budget}{})", if data_only { ",data" } else { "" }),
        instance: rolling_harmonic(n, inv_gamma, period, bursts),
        adversary: AdversarySpec::Budgeted { budget, data_only },
        p_jam,
    }
}

/// Bursty channel outages over an aligned batch: a Gilbert–Elliott chain
/// spending a `duty` fraction of slots in its bad state, in bursts of mean
/// length `burst_len`, striking every slot (idle included) while bad.
pub fn burst_outage_attack(
    class: u32,
    n: usize,
    duty: f64,
    burst_len: f64,
    p_jam: f64,
) -> AttackScenario {
    assert!((0.0..1.0).contains(&duty), "duty must be in [0,1)");
    assert!(burst_len >= 1.0, "mean burst length must be >= 1");
    let p_exit = 1.0 / burst_len;
    let p_enter = (p_exit * duty / (1.0 - duty)).min(1.0);
    AttackScenario {
        name: format!("burst(L={burst_len},duty={duty})"),
        instance: crate::generators::batch(n, 1u64 << class),
        adversary: AdversarySpec::Bursty { p_enter, p_exit },
        p_jam,
    }
}

/// The stateless reference attack: jam every would-be success with the
/// given `p_jam` (the adversary of Theorem 14's robustness claim).
pub fn stochastic_attack(class: u32, n: usize, p_jam: f64) -> AttackScenario {
    AttackScenario {
        name: format!("stochastic(p={p_jam})"),
        instance: crate::generators::batch(n, 1u64 << class),
        adversary: AdversarySpec::Policy(JamPolicy::AllSuccesses),
        p_jam,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_gamma_slack_feasible;

    #[test]
    fn rolling_harmonic_is_feasible() {
        let inst = rolling_harmonic(16, 4, 16 * 4, 5);
        assert_eq!(inst.n(), 80);
        assert!(is_gamma_slack_feasible(&inst.jobs, 0.25));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn rolling_harmonic_rejects_overlapping_bursts() {
        let _ = rolling_harmonic(16, 4, 10, 2);
    }

    #[test]
    fn laminar_nesting_structure() {
        let inst = laminar(4, 8, 2);
        assert_eq!(inst.n(), 8);
        let h = inst.window_histogram();
        assert_eq!(h[&8], 2);
        assert_eq!(h[&64], 2);
        // Laminar with power-of-two smallest is aligned.
        assert!(inst.is_aligned());
        // Feasibility: 8 jobs, tightest window 8 holds 2 of them; with
        // L = 2 the nested load is 2·2 in 8, then 4·2 in 16, ... fine:
        assert!(is_gamma_slack_feasible(&inst.jobs, 0.5));
    }

    #[test]
    fn staircase_windows_shrink() {
        let inst = staircase(5, 10, 100);
        assert_eq!(inst.jobs[0].window(), 100);
        assert_eq!(inst.jobs[4].window(), 60);
        assert!(is_gamma_slack_feasible(&inst.jobs, 1.0 / 8.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn staircase_rejects_impossible_tail() {
        let _ = staircase(11, 10, 100);
    }

    #[test]
    fn estimation_skew_pairs_reactive_with_aligned_batch() {
        let s = estimation_skew_attack(10, 8, 3, 0.5);
        assert!(s.instance.is_aligned());
        assert_eq!(s.instance.n(), 8);
        assert!(matches!(s.adversary, AdversarySpec::Reactive { k: 3, .. }));
        // Reactive jammers never strike idle slots: fast-forward stays on.
        assert!(!s.jammer().strikes_idle());
    }

    #[test]
    fn budget_blitz_stays_feasible() {
        let s = budget_blitz_attack(8, 4, 3, 16, true, 1.0);
        assert!(is_gamma_slack_feasible(&s.instance.jobs, 0.25));
        assert!(matches!(
            s.adversary,
            AdversarySpec::Budgeted {
                budget: 16,
                data_only: true
            }
        ));
    }

    #[test]
    fn burst_outage_hits_requested_duty() {
        let s = burst_outage_attack(10, 8, 0.25, 16.0, 1.0);
        let AdversarySpec::Bursty { p_enter, p_exit } = s.adversary else {
            panic!("expected bursty adversary");
        };
        assert!((p_exit - 1.0 / 16.0).abs() < 1e-12);
        let duty = p_enter / (p_enter + p_exit);
        assert!((duty - 0.25).abs() < 1e-12, "duty={duty}");
        // Gilbert–Elliott faults strike idle slots.
        assert!(s.jammer().strikes_idle());
    }

    #[test]
    fn scenario_jammer_gets_fresh_state_per_call() {
        use dcr_sim::jamming::SlotView;
        use dcr_sim::rng::{SeedSeq, StreamLabel};
        let s = budget_blitz_attack(4, 2, 1, 1, false, 1.0);
        let mut rng = SeedSeq::new(9).rng(StreamLabel::Jammer, 0);
        let mut j1 = s.jammer();
        let view = SlotView::Single {
            src: 0,
            payload: dcr_sim::message::Payload::Data(0),
        };
        assert!(j1.jams(view, &mut rng)); // budget spent
        assert!(!j1.jams(view, &mut rng));
        // A second jammer starts with a full budget again.
        assert!(s.jammer().jams(view, &mut rng));
    }
}
