//! Named job-set instances.

use dcr_sim::job::JobSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A contention-resolution problem instance: a set of jobs with windows.
///
/// Invariant (enforced by [`Instance::new`]): job ids are exactly
/// `0..jobs.len()` in order, which is what [`dcr_sim::engine::Engine`]
/// requires.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// Human-readable name (appears in experiment tables).
    pub name: String,
    /// The jobs, with ids `0..n` in order.
    pub jobs: Vec<JobSpec>,
}

impl Instance {
    /// Build an instance, renumbering job ids to `0..n` in the given order.
    pub fn new(name: impl Into<String>, mut jobs: Vec<JobSpec>) -> Self {
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = i as u32;
        }
        Self {
            name: name.into(),
            jobs,
        }
    }

    /// Number of jobs.
    pub fn n(&self) -> usize {
        self.jobs.len()
    }

    /// One past the last deadline (0 for an empty instance).
    pub fn horizon(&self) -> u64 {
        self.jobs.iter().map(|j| j.deadline).max().unwrap_or(0)
    }

    /// Earliest release (0 for an empty instance).
    pub fn start(&self) -> u64 {
        self.jobs.iter().map(|j| j.release).min().unwrap_or(0)
    }

    /// The smallest window size in the instance.
    pub fn min_window(&self) -> Option<u64> {
        self.jobs.iter().map(|j| j.window()).min()
    }

    /// The largest window size in the instance.
    pub fn max_window(&self) -> Option<u64> {
        self.jobs.iter().map(|j| j.window()).max()
    }

    /// True if every job satisfies the paper's power-of-2-aligned condition.
    pub fn is_aligned(&self) -> bool {
        self.jobs.iter().all(|j| j.is_aligned())
    }

    /// Histogram of jobs per window size.
    pub fn window_histogram(&self) -> BTreeMap<u64, usize> {
        let mut h = BTreeMap::new();
        for j in &self.jobs {
            *h.entry(j.window()).or_insert(0) += 1;
        }
        h
    }

    /// Jobs sharing exactly the window `[release, deadline)`.
    pub fn jobs_with_window(&self, release: u64, deadline: u64) -> Vec<JobSpec> {
        self.jobs
            .iter()
            .filter(|j| j.release == release && j.deadline == deadline)
            .copied()
            .collect()
    }

    /// Merge another instance's jobs into this one (ids are renumbered).
    pub fn merged(mut self, other: Instance) -> Instance {
        self.jobs.extend(other.jobs);
        Instance::new(format!("{}+{}", self.name, other.name), self.jobs)
    }

    /// Retain only jobs satisfying `pred` (ids are renumbered).
    pub fn filtered(self, pred: impl FnMut(&JobSpec) -> bool) -> Instance {
        let mut jobs = self.jobs;
        let mut pred = pred;
        jobs.retain(|j| pred(j));
        Instance::new(self.name, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::new(
            "t",
            vec![
                JobSpec::new(99, 0, 8),
                JobSpec::new(98, 8, 16),
                JobSpec::new(97, 0, 32),
            ],
        )
    }

    #[test]
    fn ids_renumbered() {
        let i = inst();
        assert_eq!(
            i.jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn extents() {
        let i = inst();
        assert_eq!(i.horizon(), 32);
        assert_eq!(i.start(), 0);
        assert_eq!(i.min_window(), Some(8));
        assert_eq!(i.max_window(), Some(32));
    }

    #[test]
    fn histogram() {
        let h = inst().window_histogram();
        assert_eq!(h[&8], 2);
        assert_eq!(h[&32], 1);
    }

    #[test]
    fn aligned_detection() {
        assert!(inst().is_aligned());
        let unaligned = Instance::new("u", vec![JobSpec::new(0, 3, 11)]);
        assert!(!unaligned.is_aligned());
    }

    #[test]
    fn merge_and_filter() {
        let a = inst();
        let b = Instance::new("b", vec![JobSpec::new(0, 0, 4)]);
        let m = a.merged(b);
        assert_eq!(m.n(), 4);
        let f = m.filtered(|j| j.window() >= 8);
        assert_eq!(f.n(), 3);
        assert_eq!(f.jobs.last().unwrap().id, 2);
    }

    #[test]
    fn empty_instance() {
        let e = Instance::new("e", vec![]);
        assert_eq!(e.horizon(), 0);
        assert_eq!(e.min_window(), None);
        assert!(e.is_aligned());
    }
}
