//! Instance generators.
//!
//! Each generator produces an [`Instance`] from one of the families the
//! paper's analysis (or our experiments) needs. Generators that cannot
//! guarantee γ-slack feasibility by construction offer
//! [`thin_to_feasible`], which admits jobs greedily while maintaining an
//! explicit witness schedule — the surviving instance is feasible by
//! certificate.

use crate::instance::Instance;
use dcr_sim::job::JobSpec;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// `n` jobs sharing the single window `[0, w)` — the batch case.
pub fn batch(n: usize, w: u64) -> Instance {
    let jobs = (0..n).map(|i| JobSpec::new(i as u32, 0, w)).collect();
    Instance::new(format!("batch(n={n},w={w})"), jobs)
}

/// `n` jobs with window `w`, job `i` released at `i * stride` — the
/// staggered-arrival pattern PUNCTUAL's synchronizer must absorb (later
/// arrivals adopt the round train the first job establishes). An unaligned
/// `stride` exercises the local-clock path; `stride = 0` degenerates to
/// [`batch`].
pub fn staggered(n: usize, stride: u64, w: u64) -> Instance {
    let jobs = (0..n)
        .map(|i| {
            let r = i as u64 * stride;
            JobSpec::new(i as u32, r, r + w)
        })
        .collect();
    Instance::new(format!("staggered(n={n},stride={stride},w={w})"), jobs)
}

/// The starvation instance from Lemma 5: all `n` jobs released at slot 0,
/// job `j` (1-based) with window size `j * inv_gamma` (i.e. `w_j = j/γ`).
///
/// This instance is `γ`-slack feasible — schedule job `j`'s inflated
/// message in `[(j-1)/γ, j/γ)` — yet under UNIFORM the early (small-window)
/// jobs see contention `≈ ln n` in every slot of their window and starve.
pub fn harmonic(n: usize, inv_gamma: u64) -> Instance {
    assert!(inv_gamma >= 1);
    let jobs = (1..=n)
        .map(|j| JobSpec::new(j as u32 - 1, 0, j as u64 * inv_gamma))
        .collect();
    Instance::new(format!("harmonic(n={n},1/γ={inv_gamma})"), jobs)
}

/// Specification of one job class for [`aligned_classes`].
#[derive(Debug, Clone, Copy)]
pub struct ClassSpec {
    /// The class `ℓ`; windows have size `2^ℓ`.
    pub class: u32,
    /// Jobs placed in **each** aligned window of this class.
    pub jobs_per_window: usize,
}

/// A power-of-2-aligned multi-class instance over `[0, horizon)`.
///
/// For each class `ℓ`, every aligned window `[k·2^ℓ, (k+1)·2^ℓ)` inside the
/// horizon receives `jobs_per_window` jobs (optionally jittered ±50% by
/// `rng`). The aligned *density* `D = Σ_ℓ jobs_per_window(ℓ) / 2^ℓ` bounds
/// the bandwidth the instance needs; keep `D ≤ γ` (and verify with
/// [`crate::feasibility::is_gamma_slack_feasible`]) for a γ-slack-feasible
/// instance.
pub fn aligned_classes(
    classes: &[ClassSpec],
    horizon: u64,
    mut rng: Option<&mut ChaCha8Rng>,
) -> Instance {
    let mut jobs = Vec::new();
    for spec in classes {
        let w = 1u64 << spec.class;
        assert!(
            horizon.is_multiple_of(w),
            "horizon must be a multiple of each class size"
        );
        let mut start = 0;
        while start < horizon {
            let count = match rng.as_deref_mut() {
                Some(r) if spec.jobs_per_window > 0 => {
                    let lo = spec.jobs_per_window.div_ceil(2);
                    let hi = spec.jobs_per_window + spec.jobs_per_window / 2;
                    r.gen_range(lo..=hi)
                }
                _ => spec.jobs_per_window,
            };
            for _ in 0..count {
                jobs.push(JobSpec::new(0, start, start + w));
            }
            start += w;
        }
    }
    let name = format!(
        "aligned({:?},h={horizon})",
        classes
            .iter()
            .map(|c| (c.class, c.jobs_per_window))
            .collect::<Vec<_>>()
    );
    Instance::new(name, jobs)
}

/// Poisson-like dynamic arrivals: geometric inter-arrival gaps with mean
/// `1/rate`, window sizes drawn uniformly from `window_choices`, releases
/// *not* aligned. The result is usually not feasibility-certified; pass it
/// through [`thin_to_feasible`].
pub fn poisson(rate: f64, horizon: u64, window_choices: &[u64], rng: &mut ChaCha8Rng) -> Instance {
    assert!(rate > 0.0 && rate <= 1.0, "rate is jobs per slot in (0,1]");
    assert!(!window_choices.is_empty());
    let mut jobs = Vec::new();
    let mut t = 0u64;
    loop {
        // Geometric(rate) gap, sampled via inverse CDF.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = (u.ln() / (1.0 - rate).max(f64::EPSILON).ln()).floor() as u64;
        t = t.saturating_add(gap.max(1));
        if t >= horizon {
            break;
        }
        let w = window_choices[rng.gen_range(0..window_choices.len())];
        jobs.push(JobSpec::new(0, t, t + w));
    }
    Instance::new(format!("poisson(rate={rate},h={horizon})"), jobs)
}

/// Bursty arrivals: every `period` slots, a burst of `burst_size` jobs is
/// released simultaneously, each with window size `window`.
pub fn bursty(burst_size: usize, period: u64, window: u64, bursts: usize) -> Instance {
    let mut jobs = Vec::new();
    for b in 0..bursts {
        let release = b as u64 * period;
        for _ in 0..burst_size {
            jobs.push(JobSpec::new(0, release, release + window));
        }
    }
    Instance::new(
        format!("bursty(b={burst_size},p={period},w={window}×{bursts})"),
        jobs,
    )
}

/// A two-scale mix: `n_small` jobs with small windows arriving throughout,
/// against `n_large` long-window jobs — the configuration where unfair
/// protocols starve the urgent traffic.
pub fn two_scale(
    n_small: usize,
    small_w: u64,
    n_large: usize,
    large_w: u64,
    rng: &mut ChaCha8Rng,
) -> Instance {
    let mut jobs = Vec::new();
    for _ in 0..n_large {
        jobs.push(JobSpec::new(0, 0, large_w));
    }
    for _ in 0..n_small {
        let r = rng.gen_range(0..large_w.saturating_sub(small_w).max(1));
        jobs.push(JobSpec::new(0, r, r + small_w));
    }
    Instance::new(
        format!("two_scale({n_small}×{small_w} vs {n_large}×{large_w})"),
        jobs,
    )
}

/// Fully random unaligned instance: `n` jobs, random releases in
/// `[0, horizon)`, window sizes uniform in `[w_min, w_max]`.
pub fn random_unaligned(
    n: usize,
    horizon: u64,
    w_min: u64,
    w_max: u64,
    rng: &mut ChaCha8Rng,
) -> Instance {
    assert!(w_min >= 1 && w_max >= w_min);
    let jobs = (0..n)
        .map(|_| {
            let w = rng.gen_range(w_min..=w_max);
            let r = rng.gen_range(0..horizon);
            JobSpec::new(0, r, r + w)
        })
        .collect();
    Instance::new(
        format!("random(n={n},h={horizon},w={w_min}..={w_max})"),
        jobs,
    )
}

/// Greedily admit jobs while a `⌈1/γ⌉`-inflated schedule certificate can be
/// maintained; drop the rest. The returned instance is γ-slack feasible by
/// construction (the certificate *is* a feasible schedule).
///
/// Jobs are considered in release order, matching how an online workload
/// would be admitted. Within each job's window the inflated message is
/// placed latest-fit, which keeps early slots free for tighter future
/// arrivals — the standard heuristic; it is not optimal, but optimality is
/// irrelevant here because any certified subset serves as a valid workload.
pub fn thin_to_feasible(instance: Instance, gamma: f64) -> Instance {
    assert!(gamma > 0.0 && gamma <= 1.0);
    let job_len = (1.0 / gamma).ceil() as u64;
    let mut jobs = instance.jobs;
    jobs.sort_by_key(|j| (j.release, j.deadline));

    // The certificate schedule: the set of occupied slots.
    let mut occupied: BTreeSet<u64> = BTreeSet::new();
    let mut admitted = Vec::new();
    let mut scratch = Vec::with_capacity(job_len as usize);
    for job in jobs {
        if job.window() < job_len {
            continue;
        }
        // Walk the window from the deadline backwards collecting free slots.
        scratch.clear();
        let mut slot = job.deadline;
        while slot > job.release && (scratch.len() as u64) < job_len {
            slot -= 1;
            if !occupied.contains(&slot) {
                scratch.push(slot);
            }
        }
        if scratch.len() as u64 == job_len {
            occupied.extend(scratch.iter().copied());
            admitted.push(job);
        }
    }
    Instance::new(format!("feasible_γ={gamma}({})", instance.name), admitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_gamma_slack_feasible;
    use dcr_sim::rng::{SeedSeq, StreamLabel};

    fn rng() -> ChaCha8Rng {
        SeedSeq::new(7).rng(StreamLabel::Workload, 0)
    }

    #[test]
    fn batch_shape() {
        let b = batch(5, 32);
        assert_eq!(b.n(), 5);
        assert!(b.jobs.iter().all(|j| j.release == 0 && j.deadline == 32));
    }

    #[test]
    fn staggered_shape() {
        let s = staggered(3, 23, 64);
        assert_eq!(s.n(), 3);
        assert_eq!(s.jobs[2].release, 46);
        assert_eq!(s.jobs[2].deadline, 46 + 64);
        assert!(s.jobs.iter().all(|j| j.window() == 64));
    }

    #[test]
    fn harmonic_is_gamma_feasible() {
        let h = harmonic(20, 4);
        assert_eq!(h.jobs[0].window(), 4);
        assert_eq!(h.jobs[19].window(), 80);
        assert!(is_gamma_slack_feasible(&h.jobs, 0.25));
    }

    #[test]
    fn aligned_classes_density_controls_feasibility() {
        // Classes 4 (w=16) and 6 (w=64), 1 job per window each:
        // density = 1/16 + 1/64 = 5/64 ≈ 0.078 — feasible at γ = 1/8? We
        // need inflated length 8: per 16-window that's 8 slots from the
        // class-4 job + nested share — verify with the exact checker.
        let inst = aligned_classes(
            &[
                ClassSpec {
                    class: 4,
                    jobs_per_window: 1,
                },
                ClassSpec {
                    class: 6,
                    jobs_per_window: 1,
                },
            ],
            256,
            None,
        );
        assert_eq!(inst.n(), 256 / 16 + 256 / 64);
        assert!(inst.is_aligned());
        assert!(is_gamma_slack_feasible(&inst.jobs, 1.0 / 8.0));
    }

    #[test]
    fn aligned_classes_jitter_stays_positive() {
        let mut r = rng();
        let inst = aligned_classes(
            &[ClassSpec {
                class: 3,
                jobs_per_window: 4,
            }],
            64,
            Some(&mut r),
        );
        // 8 windows, between 2 and 6 jobs each.
        assert!(inst.n() >= 16 && inst.n() <= 48, "n={}", inst.n());
    }

    #[test]
    fn poisson_respects_horizon_and_windows() {
        let mut r = rng();
        let inst = poisson(0.05, 10_000, &[64, 256], &mut r);
        assert!(!inst.jobs.is_empty());
        for j in &inst.jobs {
            assert!(j.release < 10_000);
            assert!(j.window() == 64 || j.window() == 256);
        }
    }

    #[test]
    fn bursty_shape() {
        let inst = bursty(3, 100, 50, 4);
        assert_eq!(inst.n(), 12);
        assert_eq!(inst.jobs[11].release, 300);
    }

    #[test]
    fn thinning_produces_certified_feasible_instance() {
        let mut r = rng();
        let raw = random_unaligned(500, 4096, 32, 512, &mut r);
        let gamma = 1.0 / 8.0;
        let thin = thin_to_feasible(raw, gamma);
        assert!(!thin.jobs.is_empty());
        assert!(
            is_gamma_slack_feasible(&thin.jobs, gamma),
            "thinned instance must verify"
        );
    }

    #[test]
    fn thinning_keeps_everything_when_light() {
        let inst = batch(2, 64);
        let thin = thin_to_feasible(inst, 1.0 / 4.0);
        assert_eq!(thin.n(), 2);
    }

    #[test]
    fn two_scale_mix_shape() {
        let mut r = rng();
        let inst = two_scale(10, 16, 3, 1024, &mut r);
        assert_eq!(inst.n(), 13);
        let h = inst.window_histogram();
        assert_eq!(h[&16], 10);
        assert_eq!(h[&1024], 3);
    }
}
