//! Window transforms: trimming to aligned windows (Lemma 15) and
//! power-of-two rounding.

use crate::instance::Instance;
use dcr_sim::job::JobSpec;

/// The largest power-of-2-aligned window contained in `[release, deadline)`.
///
/// This is the paper's `trimmed(W)`: "a largest aligned window that is
/// contained in `W`; if there is more than one largest window, choose
/// arbitrarily" (we choose the earliest). The paper notes
/// `|trimmed(W)| ≥ |W|/4`.
pub fn trimmed_window(release: u64, deadline: u64) -> (u64, u64) {
    assert!(deadline > release, "empty window");
    let w = deadline - release;
    // Try sizes 2^k from the largest possible downward; the first size with
    // an aligned start inside the window wins.
    let mut k = 63 - w.leading_zeros(); // floor(log2(w))
    loop {
        let size = 1u64 << k;
        let start = release.div_ceil(size) * size;
        if start + size <= deadline {
            return (start, start + size);
        }
        assert!(k > 0, "size-1 window always fits (start divisible by 1)");
        k -= 1;
    }
}

/// Apply [`trimmed_window`] to one job.
pub fn trimmed_job(job: &JobSpec) -> JobSpec {
    let (r, d) = trimmed_window(job.release, job.deadline);
    JobSpec::new(job.id, r, d)
}

/// Lemma 15's `trimmed(J)`: every job's window replaced by its trimmed
/// window. If `J` is 4γ-slack feasible then `trimmed(J)` is γ-slack
/// feasible.
pub fn trimmed(instance: &Instance) -> Instance {
    Instance::new(
        format!("trimmed({})", instance.name),
        instance.jobs.iter().map(trimmed_job).collect(),
    )
}

/// Round a job's window size down to the nearest power of two by moving the
/// deadline earlier (PUNCTUAL's first preliminary: "it rounds down its
/// window size to the nearest power of 2", costing at most a factor 2 of
/// slack).
pub fn round_window_pow2(job: &JobSpec) -> JobSpec {
    let w = job.window();
    let rounded = if w.is_power_of_two() {
        w
    } else {
        1u64 << (63 - w.leading_zeros())
    };
    JobSpec::new(job.id, job.release, job.release + rounded)
}

/// Apply [`round_window_pow2`] to a whole instance.
pub fn rounded_pow2(instance: &Instance) -> Instance {
    Instance::new(
        format!("pow2({})", instance.name),
        instance.jobs.iter().map(round_window_pow2).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_is_aligned_and_large_enough() {
        for (r, d) in [
            (0u64, 1u64),
            (0, 7),
            (3, 11),
            (5, 6),
            (17, 100),
            (1000, 1003),
            (999, 2001),
            (1, 1 << 20),
        ] {
            let (tr, td) = trimmed_window(r, d);
            let w = d - r;
            let tw = td - tr;
            assert!(tr >= r && td <= d, "trim [{tr},{td}) escapes [{r},{d})");
            assert!(tw.is_power_of_two());
            assert_eq!(tr % tw, 0, "start {tr} not aligned to {tw}");
            assert!(tw * 4 >= w, "trimmed {tw} < w/4 = {}/4", w);
        }
    }

    #[test]
    fn trimmed_of_aligned_window_is_identity() {
        let (r, d) = trimmed_window(16, 32);
        assert_eq!((r, d), (16, 32));
    }

    #[test]
    fn pow2_rounding() {
        let j = JobSpec::new(0, 10, 23); // w = 13 -> 8
        let r = round_window_pow2(&j);
        assert_eq!(r.window(), 8);
        assert_eq!(r.release, 10);
        // Power of two already: unchanged.
        let j = JobSpec::new(0, 10, 26); // w = 16
        assert_eq!(round_window_pow2(&j).window(), 16);
    }

    #[test]
    fn instance_transforms_preserve_job_count() {
        let inst = Instance::new("x", vec![JobSpec::new(0, 3, 11), JobSpec::new(1, 0, 100)]);
        assert_eq!(trimmed(&inst).n(), 2);
        assert!(trimmed(&inst).is_aligned());
        assert_eq!(rounded_pow2(&inst).n(), 2);
    }
}
