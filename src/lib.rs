//! # contention-deadlines
//!
//! Facade crate for the reproduction of *Contention Resolution with Message
//! Deadlines* (Agrawal, Bender, Fineman, Gilbert, Young — SPAA 2020).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`sim`] — the slotted multiple-access channel substrate;
//! * [`protocols`] — the paper's UNIFORM / ALIGNED / PUNCTUAL protocols;
//! * [`baselines`] — exponential backoff, sawtooth, ALOHA comparators;
//! * [`workloads`] — instance generators and γ-slack feasibility checking;
//! * [`stats`] — Monte-Carlo statistics helpers.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and `DESIGN.md` /
//! `EXPERIMENTS.md` at the repository root for the full reproduction map.

pub use dcr_baselines as baselines;
pub use dcr_core as protocols;
pub use dcr_sim as sim;
pub use dcr_stats as stats;
pub use dcr_workloads as workloads;

/// The paper's citation string, for reports.
pub const PAPER: &str = "Agrawal, Bender, Fineman, Gilbert, Young. \
Contention Resolution with Message Deadlines. SPAA 2020. \
doi:10.1145/3350755.3400239";
