//! Shared differential-testing kit for the integration suites.
//!
//! One copy of the protocol × adversary × workload grids, the
//! report-equality assertions, and the statistical helpers that the
//! equivalence suites (`scheduling_equivalence`, `cohort_equivalence`,
//! `kernel_differential`, `partition_invariance`, `slot_replay`) used to
//! duplicate. Each `tests/*.rs` consumer declares `mod testkit;` — the
//! module is compiled per test crate, so pieces unused by one consumer
//! are expected dead code.
#![allow(dead_code)]

use contention_deadlines::baselines::windowed::{Schedule, WindowedBackoff};
use contention_deadlines::baselines::{BinaryExponentialBackoff, FixedProbability, Sawtooth};
use contention_deadlines::protocols::Uniform;
use contention_deadlines::sim::engine::{Engine, EngineConfig, Fidelity, Protocol};
use contention_deadlines::sim::jamming::{
    BudgetedJammer, GilbertElliott, JamPolicy, Jammer, ReactiveJammer,
};
use contention_deadlines::sim::job::JobSpec;
use contention_deadlines::sim::metrics::SimReport;
use contention_deadlines::sim::runner::run_trials;
use contention_deadlines::sim::trace::tally;
use contention_deadlines::stats::Proportion;

/// The jammer grid: every stateless policy plus the stateful adversaries,
/// including both idle-striking ones (`Random`, Gilbert–Elliott) that
/// disable all-parked fast-forwarding and the stateful non-idle-striking
/// reactive jammer that relies on the `on_silent_gap` replay contract.
pub fn jammers() -> Vec<(&'static str, Option<Jammer>)> {
    vec![
        ("clean", None),
        ("all", Some(Jammer::new(JamPolicy::AllSuccesses, 0.4))),
        ("ctrl", Some(Jammer::new(JamPolicy::ControlOnly, 0.6))),
        ("data", Some(Jammer::new(JamPolicy::DataOnly, 0.5))),
        (
            "random",
            Some(Jammer::new(JamPolicy::Random { attempt: 0.1 }, 0.5)),
        ),
        (
            "budget",
            Some(Jammer::adaptive(
                Box::new(BudgetedJammer::new(5, false)),
                0.7,
            )),
        ),
        (
            "budget-data",
            Some(Jammer::adaptive(
                Box::new(BudgetedJammer::new(3, true)),
                1.0,
            )),
        ),
        (
            "reactive",
            Some(Jammer::adaptive(Box::new(ReactiveJammer::new(2, 16)), 0.8)),
        ),
        (
            "bursty",
            Some(Jammer::adaptive(
                Box::new(GilbertElliott::new(0.05, 0.2)),
                0.6,
            )),
        ),
    ]
}

/// The proptest jammer arm: a deterministic pick from a 8-way mix of
/// policies (one `None`, the rest covering stateless and stateful,
/// idle-striking and reactive adversaries).
pub fn jammer_pick(pick: usize) -> Option<Jammer> {
    match pick % 8 {
        0 => None,
        1 => Some(Jammer::new(JamPolicy::AllSuccesses, 0.3)),
        2 => Some(Jammer::new(JamPolicy::ControlOnly, 0.5)),
        3 => Some(Jammer::new(JamPolicy::DataOnly, 0.5)),
        4 => Some(Jammer::new(JamPolicy::Random { attempt: 0.05 }, 0.5)),
        5 => Some(Jammer::adaptive(
            Box::new(BudgetedJammer::new(4, false)),
            0.6,
        )),
        6 => Some(Jammer::adaptive(Box::new(ReactiveJammer::new(1, 8)), 0.7)),
        _ => Some(Jammer::adaptive(
            Box::new(GilbertElliott::new(0.1, 0.3)),
            0.5,
        )),
    }
}

/// The proptest protocol arm: a deterministic pick from the 6-way mix of
/// workspace protocols the random-population suites draw from.
pub fn protocol_pick(pick: usize) -> Box<dyn Protocol> {
    match pick % 6 {
        0 => Box::new(Uniform::new(1)),
        1 => Box::new(Uniform::new(2)),
        2 => Box::new(Sawtooth::new()),
        3 => Box::new(BinaryExponentialBackoff::new()),
        4 => Box::new(WindowedBackoff::new(Schedule::Geometric {
            base: 2,
            first: 1,
        })),
        _ => Box::new(FixedProbability::new(0.03)),
    }
}

/// Jobs with releases staggered around the first half-window.
pub fn staggered(n: u32, spread: u64, w: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let r = u64::from(i) * spread % (w / 2);
            JobSpec::new(i, r, r + w)
        })
        .collect()
}

/// Assert every non-diagnostic observable of two reports matches
/// bit-for-bit: outcomes, channel counts, per-job access counts,
/// `slots_run`, and — when both runs traced — the trace tallies.
///
/// `declared_contention` and raw trace records are deliberately *not*
/// compared: parked (or kernel-managed) jobs are not polled for their
/// diagnostic `tx_probability`, and silent stretches may be recorded as
/// different run-length splits, so both legitimately differ between
/// equivalent execution modes.
pub fn assert_reports_match(label: &str, seed: u64, a: &SimReport, b: &SimReport) {
    assert_eq!(
        a.outcomes(),
        b.outcomes(),
        "{label}: outcomes diverge (seed {seed})"
    );
    assert_eq!(
        a.counts, b.counts,
        "{label}: slot counts diverge (seed {seed})"
    );
    assert_eq!(
        a.accesses, b.accesses,
        "{label}: access counts diverge (seed {seed})"
    );
    assert_eq!(
        a.slots_run, b.slots_run,
        "{label}: slots_run diverges (seed {seed})"
    );
    if let (Some(ta), Some(tb)) = (a.trace.as_ref(), b.trace.as_ref()) {
        assert_eq!(
            tally(ta),
            tally(tb),
            "{label}: trace tallies diverge (seed {seed})"
        );
    }
}

/// Run the same simulation under two configurations and assert every
/// non-diagnostic observable matches bit-for-bit (traces are recorded on
/// both sides so the tallies are compared too).
pub fn assert_config_equiv<F>(
    label: &str,
    a: EngineConfig,
    b: EngineConfig,
    jammer: Option<&Jammer>,
    seed: u64,
    setup: F,
) where
    F: Fn(&mut Engine),
{
    let run = |config: EngineConfig| -> SimReport {
        let mut engine = Engine::new(config.with_trace(), seed);
        if let Some(j) = jammer {
            engine.set_jammer(j.clone());
        }
        setup(&mut engine);
        engine.run()
    };
    let ra = run(a);
    let rb = run(b);
    assert_reports_match(label, seed, &ra, &rb);
}

/// Total successes over total jobs for `trials` independent runs of the
/// `n`-job population built by `factory`, under the given fidelity.
pub fn success_proportion(
    fidelity: Fidelity,
    trials: u64,
    master_seed: u64,
    n: u32,
    window: u64,
    factory: impl Fn(&JobSpec) -> Box<dyn Protocol> + Sync,
) -> Proportion {
    let config = EngineConfig {
        fidelity,
        ..EngineConfig::default()
    };
    let hits: u64 = run_trials(trials, master_seed, |_, seed| {
        let mut e = Engine::new(config.clone(), seed);
        for i in 0..n {
            let spec = JobSpec::new(i, 0, window);
            e.add_job(spec, factory(&spec));
        }
        e.run().successes() as u64
    })
    .into_iter()
    .map(|t| t.value)
    .sum();
    Proportion::new(hits, trials * u64::from(n))
}

/// [`success_proportion`] generalized over an arbitrary base config and
/// an optional jammer — the aggregate-class equivalence grids need both
/// (ALIGNED requires the aligned-clock config; every cell crosses the
/// jammer grid).
pub fn success_proportion_grid(
    config: &EngineConfig,
    jammer: Option<&Jammer>,
    trials: u64,
    master_seed: u64,
    n: u32,
    window: u64,
    factory: impl Fn(&JobSpec) -> Box<dyn Protocol> + Sync,
) -> Proportion {
    let hits: u64 = run_trials(trials, master_seed, |_, seed| {
        let mut e = Engine::new(config.clone(), seed);
        if let Some(j) = jammer {
            e.set_jammer(j.clone());
        }
        for i in 0..n {
            let spec = JobSpec::new(i, 0, window);
            e.add_job(spec, factory(&spec));
        }
        e.run().successes() as u64
    })
    .into_iter()
    .map(|t| t.value)
    .sum();
    Proportion::new(hits, trials * u64::from(n))
}

/// Cluster-robust success-law comparison for protocols whose failures
/// cluster by trial: ALIGNED and PUNCTUAL share one estimate / one leader
/// per class, so a bad draw fails the whole class at once and job-level
/// Wilson intervals are badly miscalibrated (the 1440 "samples" are ~60
/// clusters). Compare mean per-trial success fractions with trial-level
/// standard errors instead — an honest two-sample z-test on the cluster
/// means.
#[allow(clippy::too_many_arguments)]
pub fn assert_success_law_match(
    label: &str,
    config_a: &EngineConfig,
    config_b: &EngineConfig,
    jammer: Option<&Jammer>,
    trials: u64,
    master_seed: u64,
    n: u32,
    window: u64,
    factory: impl Fn(&JobSpec) -> Box<dyn Protocol> + Sync,
) {
    let fractions = |config: &EngineConfig, seed0: u64| -> Vec<f64> {
        run_trials(trials, seed0, |_, seed| {
            let mut e = Engine::new(config.clone(), seed);
            if let Some(j) = jammer {
                e.set_jammer(j.clone());
            }
            for i in 0..n {
                let spec = JobSpec::new(i, 0, window);
                e.add_job(spec, factory(&spec));
            }
            e.run().success_fraction()
        })
        .into_iter()
        .map(|t| t.value)
        .collect()
    };
    let a = fractions(config_a, master_seed);
    let b = fractions(config_b, master_seed + 7919);
    let stat = |v: &[f64]| {
        let m = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() as f64 - 1.0);
        (m, (var / v.len() as f64).sqrt())
    };
    let (ma, sa) = stat(&a);
    let (mb, sb) = stat(&b);
    let tol = (5.0 * (sa + sb)).max(0.03);
    assert!(
        (ma - mb).abs() < tol,
        "{label}: mean success fraction {ma:.4} vs {mb:.4} (tol {tol:.4})"
    );
}

/// Assert the Wilson intervals at quantile `z` overlap, with a diagnostic
/// that prints both intervals on failure.
pub fn assert_wilson_overlap(label: &str, a: Proportion, b: Proportion, z: f64) {
    let (alo, ahi) = a.wilson(z);
    let (blo, bhi) = b.wilson(z);
    assert!(
        alo <= bhi && blo <= ahi,
        "{label}: exact [{alo:.4}, {ahi:.4}] (p̂={:.4}) vs aggregate \
         [{blo:.4}, {bhi:.4}] (p̂={:.4}) do not overlap",
        a.estimate(),
        b.estimate(),
    );
}

/// Proptest case count: `default`, overridable upward (or downward) via
/// the `PROPTEST_CASES` environment variable — the CI nightly job raises
/// it for release-mode deep runs of the equivalence suites.
pub fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
