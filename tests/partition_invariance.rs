//! Partition invariance of the sharded Bernoulli pass.
//!
//! Because every kernel draw is a pure function of `(job_key, slot,
//! phase)` — no sequential stream threads through the workers — the
//! vectorized engine may split one trial's Bernoulli pass across any
//! number of worker shards and produce the *same bytes*: not just equal
//! outcomes, the entire serialized [`SimReport`] (timing zeroed) must be
//! identical for 1, 2, and 8 shards. This is the property that makes
//! splitting a single large trial across threads sound, and it is the
//! reason the counter-based generator exists at all.
//!
//! Populations are sized past the kernel's `PARALLEL_MIN_LANES`
//! threshold (256 lanes, and ≥ 64 lanes per shard) so the 8-shard run
//! genuinely spawns workers rather than falling back to the inline pass.
//!
//! [`SimReport`]: contention_deadlines::sim::metrics::SimReport

mod testkit;

use contention_deadlines::baselines::FixedProbability;
use contention_deadlines::protocols::{
    AlignedParams, AlignedProtocol, PunctualParams, PunctualProtocol, Uniform,
};
use contention_deadlines::sim::engine::{Engine, EngineConfig};
use contention_deadlines::sim::job::JobSpec;
use contention_deadlines::sim::metrics::SimReport;

/// Run one trial of `base` with the given shard count and serialize the
/// full report with wall-clock timing zeroed (the only field that may
/// legitimately differ between runs).
fn report_bytes<F>(base: &EngineConfig, shards: usize, seed: u64, setup: &F) -> String
where
    F: Fn(&mut Engine),
{
    let config = base.clone().with_kernel_shards(shards).with_trace();
    let mut engine = Engine::new(config, seed);
    setup(&mut engine);
    let mut report: SimReport = engine.run();
    report.engine_nanos = 0;
    serde_json::to_string(&report).expect("report serializes")
}

fn assert_partition_invariant_in<F>(base: EngineConfig, label: &str, seed: u64, setup: F)
where
    F: Fn(&mut Engine),
{
    let reference = report_bytes(&base, 1, seed, &setup);
    for shards in [2usize, 8] {
        let sharded = report_bytes(&base, shards, seed, &setup);
        assert_eq!(
            reference, sharded,
            "{label}: serialized report diverges between 1 and {shards} shards (seed {seed})"
        );
    }
}

fn assert_partition_invariant<F>(label: &str, seed: u64, setup: F)
where
    F: Fn(&mut Engine),
{
    assert_partition_invariant_in(EngineConfig::default().vectorized(), label, seed, setup);
}

#[test]
fn dense_aloha_trial_is_shard_count_invariant() {
    // 2048 lanes in one bucket: the 8-shard pass spans 32 mask words,
    // every shard gets whole words, and the dense branchless path runs.
    for seed in 0..3u64 {
        assert_partition_invariant("dense-aloha", seed, |e| {
            for i in 0..2048u32 {
                e.add_job(
                    JobSpec::new(i, 0, 4096),
                    Box::new(FixedProbability::new(1.0 / 1024.0)),
                );
            }
        });
    }
}

#[test]
fn multi_bucket_trial_is_shard_count_invariant() {
    // Buckets of uneven sizes (1536 / 384 / 128 lanes): shard boundaries
    // land mid-bucket and on partial trailing words in every bucket.
    let ps = [1.0 / 2048.0, 1.0 / 256.0, 1.0 / 64.0];
    for seed in 0..3u64 {
        assert_partition_invariant("multi-bucket", seed, |e| {
            for i in 0..2048u32 {
                let class = match i {
                    0..=1535 => 0,
                    1536..=1919 => 1,
                    _ => 2,
                };
                let release = u64::from(i % 128);
                e.add_job(
                    JobSpec::new(i, release, release + 4096),
                    Box::new(FixedProbability::new(ps[class])),
                );
            }
        });
    }
}

#[test]
fn mixed_shot_and_bern_trial_is_shard_count_invariant() {
    // One-shot calendar traffic interleaved with a large Bernoulli
    // population: the calendar is shard-independent by construction, but
    // its transmissions perturb the channel the sharded pass feeds into.
    for seed in 0..3u64 {
        assert_partition_invariant("mixed-shot-bern", seed, |e| {
            for i in 0..1024u32 {
                e.add_job(
                    JobSpec::new(i, 0, 2048),
                    Box::new(FixedProbability::new(1.0 / 512.0)),
                );
            }
            for i in 1024..1280u32 {
                let release = u64::from(i % 64) * 3;
                e.add_job(
                    JobSpec::new(i, release, release + 2048),
                    Box::new(Uniform::single()),
                );
            }
        });
    }
}

#[test]
fn class_profile_jobs_are_shard_count_invariant() {
    // Aggregate-capable protocols (`CohortTx::Class`) ride the exact path
    // under vectorized fidelity, but they share the channel with a
    // 2048-lane ALOHA bed large enough to engage the sharded pass: the
    // class jobs' feedback (and therefore every downstream state machine)
    // must not depend on how the Bernoulli pass was partitioned. PUNCTUAL
    // runs under the default config, ALIGNED under the aligned-clock one.
    for seed in 0..2u64 {
        assert_partition_invariant_in(
            EngineConfig::default().vectorized(),
            "punctual-class",
            seed,
            |e| {
                for i in 0..2048u32 {
                    e.add_job(
                        JobSpec::new(i, 0, 4096),
                        Box::new(FixedProbability::new(1.0 / 1024.0)),
                    );
                }
                for i in 2048..2053u32 {
                    e.add_job(
                        JobSpec::new(i, 0, 4096),
                        Box::new(PunctualProtocol::new(PunctualParams::laptop())),
                    );
                }
            },
        );
        assert_partition_invariant_in(
            EngineConfig::aligned().vectorized(),
            "aligned-class",
            seed,
            |e| {
                for i in 0..2048u32 {
                    e.add_job(
                        JobSpec::new(i, 0, 4096),
                        Box::new(FixedProbability::new(1.0 / 1024.0)),
                    );
                }
                for i in 2048..2064u32 {
                    e.add_job(
                        JobSpec::new(i, 0, 512),
                        Box::new(AlignedProtocol::new(AlignedParams::new(1, 2, 9))),
                    );
                }
            },
        );
    }
}

#[test]
fn cohort_fidelity_ignores_shard_count() {
    // Shards are a vectorized-kernel concern; under cohort fidelity the
    // aggregate drivers draw from the class stream regardless of the
    // configured shard count, so the report must be byte-identical across
    // 1/2/8 — a guard against shard state ever leaking into the class-RNG
    // keying.
    for seed in 0..2u64 {
        assert_partition_invariant_in(
            EngineConfig::aligned().cohort(),
            "cohort-aligned",
            seed,
            |e| {
                for i in 0..24u32 {
                    e.add_job(
                        JobSpec::new(i, 0, 512),
                        Box::new(AlignedProtocol::new(AlignedParams::new(1, 2, 9))),
                    );
                }
            },
        );
        assert_partition_invariant_in(
            EngineConfig::default().cohort(),
            "cohort-punctual",
            seed,
            |e| {
                for i in 0..6u32 {
                    e.add_job(
                        JobSpec::new(i, 0, 1 << 12),
                        Box::new(PunctualProtocol::new(PunctualParams::laptop())),
                    );
                }
            },
        );
    }
}

#[test]
fn shard_count_does_not_leak_into_exact_equivalence() {
    // The sharded run must stay bit-identical to the *exact* engine too,
    // not merely self-consistent: partition invariance composes with the
    // kernel differential guarantee.
    use testkit::assert_config_equiv;
    for seed in 0..2u64 {
        assert_config_equiv(
            "sharded-vs-exact",
            EngineConfig::default(),
            EngineConfig::default().vectorized().with_kernel_shards(8),
            None,
            seed,
            |e| {
                for i in 0..640u32 {
                    e.add_job(
                        JobSpec::new(i, 0, 2048),
                        Box::new(FixedProbability::new(1.0 / 256.0)),
                    );
                }
            },
        );
    }
}
