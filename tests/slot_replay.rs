//! O(1) slot replay: any `(trial, job, slot)` transmission decision can
//! be reproduced *without running the engine*, by evaluating the pure
//! counter draw at that position.
//!
//! The engine hands every protocol callback a [`CounterRng`] keyed on
//! `(trial_seed → job_key, slot, phase)`, so the first draw a protocol
//! makes in a slot is a pure function of those coordinates. For the two
//! kernel-eligible shapes this pins the whole transmission schedule:
//!
//! - ALOHA ([`FixedProbability`]): one `gen_bool(p)` per polled slot —
//!   [`crng::replay_bernoulli`] must equal "did it transmit" for every
//!   slot the job was live, transmit or not.
//! - One-shot UNIFORM ([`Uniform::single`]): one `gen_range(0..w)` at
//!   activation — [`crng::replay_oneshot`] must name the exact global
//!   slot of the job's single attempt.
//!
//! A recording wrapper logs the full run's actual transmissions (under
//! the full jammer grid and both scheduling modes); the replay side
//! never touches the engine — just [`SeedSeq::job_key`] and the draw.
//!
//! [`CounterRng`]: contention_deadlines::sim::crng::CounterRng
//! [`crng::replay_bernoulli`]: contention_deadlines::sim::crng::replay_bernoulli
//! [`crng::replay_oneshot`]: contention_deadlines::sim::crng::replay_oneshot
//! [`FixedProbability`]: contention_deadlines::baselines::FixedProbability
//! [`Uniform::single`]: contention_deadlines::protocols::Uniform::single
//! [`SeedSeq::job_key`]: contention_deadlines::sim::rng::SeedSeq::job_key

mod testkit;

use std::cell::RefCell;
use std::rc::Rc;

use contention_deadlines::baselines::FixedProbability;
use contention_deadlines::protocols::Uniform;
use contention_deadlines::sim::crng;
use contention_deadlines::sim::engine::{
    Action, CohortTx, DutyCycle, Engine, EngineConfig, JobCtx, Protocol,
};
use contention_deadlines::sim::job::JobSpec;
use contention_deadlines::sim::metrics::{JobOutcome, SimReport};
use contention_deadlines::sim::probe::ProbeEvent;
use contention_deadlines::sim::rng::SeedSeq;
use contention_deadlines::sim::slot::Feedback;
use rand::RngCore;
use testkit::jammers;

type TxLog = Rc<RefCell<Vec<(u32, u64)>>>;

/// Transparent wrapper that logs `(job, global slot)` for every
/// transmission the inner protocol makes, delegating everything else.
struct Recorded {
    inner: Box<dyn Protocol>,
    release: u64,
    log: TxLog,
}

impl Protocol for Recorded {
    fn on_activate(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) {
        self.inner.on_activate(ctx, rng);
    }
    fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
        let action = self.inner.act(ctx, rng);
        if matches!(action, Action::Transmit(_)) {
            self.log
                .borrow_mut()
                .push((ctx.id, self.release + ctx.local_time));
        }
        action
    }
    fn on_feedback(&mut self, ctx: &JobCtx, fb: &Feedback, rng: &mut dyn RngCore) {
        self.inner.on_feedback(ctx, fb, rng);
    }
    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
    fn tx_probability(&self, ctx: &JobCtx) -> Option<f64> {
        self.inner.tx_probability(ctx)
    }
    fn next_wake(&self, ctx: &JobCtx) -> Option<u64> {
        self.inner.next_wake(ctx)
    }
    fn duty_cycle(&self, ctx: &JobCtx) -> Option<DutyCycle> {
        self.inner.duty_cycle(ctx)
    }
    fn duty_listen(&self, ctx: &JobCtx, fb: &Feedback) -> bool {
        self.inner.duty_listen(ctx, fb)
    }
    fn cohort_tx(&self, ctx: &JobCtx) -> Option<CohortTx> {
        self.inner.cohort_tx(ctx)
    }
    fn drain_events(&mut self, out: &mut Vec<ProbeEvent>) {
        self.inner.drain_events(out);
    }
}

/// Run `specs` on the exact path with recording wrappers; return the
/// report and the logged `(job, slot)` transmissions.
fn record_run(
    config: EngineConfig,
    jammer_name: &str,
    seed: u64,
    specs: &[JobSpec],
    factory: impl Fn(&JobSpec) -> Box<dyn Protocol>,
) -> (SimReport, Vec<(u32, u64)>) {
    let grid = jammers();
    let (_, jammer) = grid
        .iter()
        .find(|(n, _)| *n == jammer_name)
        .expect("jammer name in grid");
    let log: TxLog = Rc::new(RefCell::new(Vec::new()));
    let mut engine = Engine::new(config, seed);
    if let Some(j) = jammer {
        engine.set_jammer(j.clone());
    }
    for spec in specs {
        engine.add_job(
            *spec,
            Box::new(Recorded {
                inner: factory(spec),
                release: spec.release,
                log: Rc::clone(&log),
            }),
        );
    }
    let report = engine.run();
    let txs = log.borrow().clone();
    (report, txs)
}

/// The last slot in which `spec`'s job was polled: its delivery slot on
/// success, else the final slot of its window.
fn last_live_slot(spec: &JobSpec, outcome: &JobOutcome) -> u64 {
    match outcome {
        JobOutcome::Success { slot } => *slot,
        JobOutcome::Missed => spec.deadline - 1,
    }
}

#[test]
fn aloha_schedule_replays_from_pure_draws() {
    let p = 0.04;
    let specs = testkit::staggered(20, 41, 700);
    for (jname, _) in jammers() {
        for seed in 0..3u64 {
            for config in [EngineConfig::default(), EngineConfig::default().dense()] {
                let (report, txs) = record_run(config, jname, seed, &specs, |_| {
                    Box::new(FixedProbability::new(p))
                });
                let keys = SeedSeq::new(seed);
                for spec in &specs {
                    let key = keys.job_key(u64::from(spec.id));
                    let last = last_live_slot(spec, &report.outcome(spec.id));
                    for slot in spec.release..=last {
                        let recorded = txs.contains(&(spec.id, slot));
                        let replayed = crng::replay_bernoulli(key, slot, p);
                        assert_eq!(
                            recorded, replayed,
                            "jam={jname} seed={seed} job={} slot={slot}: \
                             run recorded {recorded}, pure draw replays {replayed}",
                            spec.id
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn oneshot_attempt_replays_from_pure_draw() {
    let specs = testkit::staggered(24, 29, 400);
    for (jname, _) in jammers() {
        for seed in 0..3u64 {
            for config in [EngineConfig::default(), EngineConfig::default().dense()] {
                let (_, txs) =
                    record_run(config, jname, seed, &specs, |_| Box::new(Uniform::single()));
                let keys = SeedSeq::new(seed);
                for spec in &specs {
                    let key = keys.job_key(u64::from(spec.id));
                    let predicted = crng::replay_oneshot(key, spec.release, spec.window());
                    let actual: Vec<u64> = txs
                        .iter()
                        .filter(|(id, _)| *id == spec.id)
                        .map(|(_, s)| *s)
                        .collect();
                    assert_eq!(
                        actual,
                        vec![predicted],
                        "jam={jname} seed={seed} job={}: one-shot replay diverges",
                        spec.id
                    );
                }
            }
        }
    }
}

#[test]
fn replay_is_positionwise_not_streamwise() {
    // The O(1) property proper: replaying a *sampled* position needs no
    // prefix — query slots out of order, interleaved across jobs, and
    // compare against one reference run.
    let p = 0.07;
    let specs = testkit::staggered(12, 17, 300);
    let seed = 9;
    let (report, txs) = record_run(EngineConfig::default(), "clean", seed, &specs, |_| {
        Box::new(FixedProbability::new(p))
    });
    let keys = SeedSeq::new(seed);
    // A scattered probe order: stride through (job, slot) space backwards.
    for probe in (0..600u64).rev().step_by(7) {
        let spec = &specs[(probe % 12) as usize];
        let slot = spec.release + probe % spec.window();
        if slot > last_live_slot(spec, &report.outcome(spec.id)) {
            continue;
        }
        let key = keys.job_key(u64::from(spec.id));
        assert_eq!(
            txs.contains(&(spec.id, slot)),
            crng::replay_bernoulli(key, slot, p),
            "job={} slot={slot}",
            spec.id
        );
    }
}
