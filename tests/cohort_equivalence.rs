//! Statistical equivalence of [`Fidelity::Cohort`] and the exact path.
//!
//! Cohort mode replaces per-job Bernoulli draws with one binomial draw per
//! cohort, so reports are *not* bit-identical to the exact engine — the
//! claim is distributional. These tests validate it the way the mode's
//! contract states it: the Wilson confidence intervals of the success rate
//! under each fidelity must overlap.
//!
//! Two tiers of strictness:
//!
//! * **ALOHA ([`FixedProbability`])** is *exactly* the cohort model
//!   (Bernoulli(p) each slot, never listening), so the two fidelities
//!   sample the same distribution and a tight interval must agree.
//! * **[`Uniform`] (k = 1)** maps to the engine's one-shot model, which is
//!   also exact (sequential-hazard decomposition of a uniform one-shot
//!   placement), so its intervals must agree just as tightly.

mod testkit;

use contention_deadlines::baselines::FixedProbability;
use contention_deadlines::protocols::Uniform;
use contention_deadlines::sim::engine::{Engine, EngineConfig, Fidelity};
use contention_deadlines::sim::job::JobSpec;
use testkit::{assert_wilson_overlap, success_proportion};

#[test]
fn aloha_cohort_matches_exact_tightly() {
    // n jobs at p = 1/n (contention 1) over 4 windows' worth of slots:
    // enough contention that the aggregate resolution logic is exercised,
    // enough slack that most jobs deliver. Exact per-slot model match ⇒
    // the 95% intervals themselves must overlap.
    let n = 48u32;
    let p = 1.0 / f64::from(n);
    let exact = success_proportion(Fidelity::Exact, 300, 1001, n, 256, |_| {
        Box::new(FixedProbability::new(p))
    });
    let cohort = success_proportion(Fidelity::Cohort, 300, 2002, n, 256, |_| {
        Box::new(FixedProbability::new(p))
    });
    assert_wilson_overlap("aloha", exact, cohort, 1.959_963_985);
}

#[test]
fn aloha_cohort_matches_exact_under_heavy_contention() {
    // Contention 4: most slots are collisions, deliveries are rare, and
    // the binomial draw is >1 almost always — stressing the "materialize
    // only the sole winner" logic. Still the same distribution; allow
    // z = 3 for the rarer-event proportion.
    let n = 64u32;
    let p = 4.0 / f64::from(n);
    let exact = success_proportion(Fidelity::Exact, 250, 3003, n, 192, |_| {
        Box::new(FixedProbability::new(p))
    });
    let cohort = success_proportion(Fidelity::Cohort, 250, 4004, n, 192, |_| {
        Box::new(FixedProbability::new(p))
    });
    assert_wilson_overlap("aloha-heavy", exact, cohort, 3.0);
}

#[test]
fn uniform_cohort_matches_exact() {
    // k = 1, n jobs in a window of exactly n: contention 1 per slot, the
    // Lemma 4 regime where a constant fraction (≈ 1/e of slots become
    // singletons) succeeds. The one-shot aggregate model samples the same
    // joint distribution as per-job uniform placement, so the 95%
    // intervals must overlap.
    let exact = success_proportion(Fidelity::Exact, 300, 5005, 64, 64, |_| {
        Box::new(Uniform::single())
    });
    let cohort = success_proportion(Fidelity::Cohort, 300, 6006, 64, 64, |_| {
        Box::new(Uniform::single())
    });
    assert_wilson_overlap("uniform", exact, cohort, 1.959_963_985);

    // And in the sparse regime (w ≫ n) where nearly everyone succeeds.
    let exact = success_proportion(Fidelity::Exact, 300, 7007, 32, 512, |_| {
        Box::new(Uniform::single())
    });
    let cohort = success_proportion(Fidelity::Cohort, 300, 8008, 32, 512, |_| {
        Box::new(Uniform::single())
    });
    assert_wilson_overlap("uniform-sparse", exact, cohort, 1.959_963_985);
}

#[test]
fn cohort_mode_is_deterministic_per_seed() {
    // Same seed ⇒ same cohort draws ⇒ identical outcomes, independent of
    // thread scheduling (the cohort stream is derived, not shared).
    let config = EngineConfig {
        fidelity: Fidelity::Cohort,
        ..EngineConfig::default()
    };
    let run = || {
        let mut e = Engine::new(config.clone(), 77);
        for i in 0..40u32 {
            e.add_job(
                JobSpec::new(i, 0, 300),
                Box::new(FixedProbability::new(0.02)),
            );
        }
        e.run().outcomes().to_vec()
    };
    assert_eq!(run(), run());
}
