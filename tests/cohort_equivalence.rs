//! Statistical equivalence of [`Fidelity::Cohort`] and the exact path.
//!
//! Cohort mode replaces per-job Bernoulli draws with one binomial draw per
//! cohort, so reports are *not* bit-identical to the exact engine — the
//! claim is distributional. These tests validate it the way the mode's
//! contract states it: the Wilson confidence intervals of the success rate
//! under each fidelity must overlap.
//!
//! Two tiers of strictness:
//!
//! * **ALOHA ([`FixedProbability`])** is *exactly* the cohort model
//!   (Bernoulli(p) each slot, never listening), so the two fidelities
//!   sample the same distribution and a tight interval must agree.
//! * **[`Uniform`] (k = 1)** maps to the engine's one-shot model, which is
//!   also exact (sequential-hazard decomposition of a uniform one-shot
//!   placement), so its intervals must agree just as tightly.

mod testkit;

use contention_deadlines::baselines::FixedProbability;
use contention_deadlines::protocols::{
    AlignedParams, AlignedProtocol, PunctualParams, PunctualProtocol, Uniform,
};
use contention_deadlines::sim::engine::{Engine, EngineConfig, Fidelity};
use contention_deadlines::sim::job::JobSpec;
use contention_deadlines::sim::probe::{ProbeEvent, ProbeSpec, SinkSpec};
use testkit::{assert_success_law_match, assert_wilson_overlap, jammers, success_proportion};

#[test]
fn aloha_cohort_matches_exact_tightly() {
    // n jobs at p = 1/n (contention 1) over 4 windows' worth of slots:
    // enough contention that the aggregate resolution logic is exercised,
    // enough slack that most jobs deliver. Exact per-slot model match ⇒
    // the 95% intervals themselves must overlap.
    let n = 48u32;
    let p = 1.0 / f64::from(n);
    let exact = success_proportion(Fidelity::Exact, 300, 1001, n, 256, |_| {
        Box::new(FixedProbability::new(p))
    });
    let cohort = success_proportion(Fidelity::Cohort, 300, 2002, n, 256, |_| {
        Box::new(FixedProbability::new(p))
    });
    assert_wilson_overlap("aloha", exact, cohort, 1.959_963_985);
}

#[test]
fn aloha_cohort_matches_exact_under_heavy_contention() {
    // Contention 4: most slots are collisions, deliveries are rare, and
    // the binomial draw is >1 almost always — stressing the "materialize
    // only the sole winner" logic. Still the same distribution; allow
    // z = 3 for the rarer-event proportion.
    let n = 64u32;
    let p = 4.0 / f64::from(n);
    let exact = success_proportion(Fidelity::Exact, 250, 3003, n, 192, |_| {
        Box::new(FixedProbability::new(p))
    });
    let cohort = success_proportion(Fidelity::Cohort, 250, 4004, n, 192, |_| {
        Box::new(FixedProbability::new(p))
    });
    assert_wilson_overlap("aloha-heavy", exact, cohort, 3.0);
}

#[test]
fn uniform_cohort_matches_exact() {
    // k = 1, n jobs in a window of exactly n: contention 1 per slot, the
    // Lemma 4 regime where a constant fraction (≈ 1/e of slots become
    // singletons) succeeds. The one-shot aggregate model samples the same
    // joint distribution as per-job uniform placement, so the 95%
    // intervals must overlap.
    let exact = success_proportion(Fidelity::Exact, 300, 5005, 64, 64, |_| {
        Box::new(Uniform::single())
    });
    let cohort = success_proportion(Fidelity::Cohort, 300, 6006, 64, 64, |_| {
        Box::new(Uniform::single())
    });
    assert_wilson_overlap("uniform", exact, cohort, 1.959_963_985);

    // And in the sparse regime (w ≫ n) where nearly everyone succeeds.
    let exact = success_proportion(Fidelity::Exact, 300, 7007, 32, 512, |_| {
        Box::new(Uniform::single())
    });
    let cohort = success_proportion(Fidelity::Cohort, 300, 8008, 32, 512, |_| {
        Box::new(Uniform::single())
    });
    assert_wilson_overlap("uniform-sparse", exact, cohort, 1.959_963_985);
}

#[test]
fn aligned_aggregate_matches_exact_across_jammers() {
    // The ALIGNED class driver replays the shared schedule once per class
    // and draws one binomial per slot; the success law must match the exact
    // path in every adversary regime, including the data-jammer cells that
    // exercise the jammed-broadcast-winner exclusion rule. The RNG domains
    // differ (class stream vs per-job streams), so the claim is
    // distributional — and because one bad size estimate fails a whole
    // class at once, the comparison must be cluster-robust (trial-level
    // means, not pooled job-level Wilson intervals).
    let params = AlignedParams::new(1, 2, 9);
    for (cell, (name, jammer)) in jammers().into_iter().enumerate() {
        let base = 20_000 + 100 * cell as u64;
        assert_success_law_match(
            &format!("aligned-{name}"),
            &EngineConfig::aligned(),
            &EngineConfig::aligned().cohort(),
            jammer.as_ref(),
            60,
            base,
            24,
            512,
            |_| Box::new(AlignedProtocol::new(params)),
        );
    }
}

#[test]
fn punctual_aggregate_matches_exact_across_jammers() {
    // PUNCTUAL's aggregate advances the duty-masked group machine once per
    // class and materializes only at lone wins, elections, and anarchist
    // conversions; the end-to-end success law must track the exact path
    // under every adversary, including beacon-killing and claim-killing
    // jammers. A whole class shares one leader/anarchy fate per trial, so
    // the comparison is cluster-robust at the trial level.
    for (cell, (name, jammer)) in jammers().into_iter().enumerate() {
        let base = 30_000 + 100 * cell as u64;
        assert_success_law_match(
            &format!("punctual-{name}"),
            &EngineConfig::default(),
            &EngineConfig::default().cohort(),
            jammer.as_ref(),
            40,
            base,
            6,
            1 << 13,
            |_| Box::new(PunctualProtocol::new(PunctualParams::laptop())),
        );
    }
}

#[test]
fn aggregate_classes_actually_engage() {
    // Canary against the equivalence grids silently passing because cohort
    // mode fell back to per-job execution: class drivers stamp their probe
    // records with no job id, so at least one job-less record must appear
    // for each protocol under cohort fidelity.
    let probe = || ProbeSpec::new().with(SinkSpec::Events);

    let mut e = Engine::new(EngineConfig::aligned().cohort().with_probe(probe()), 5);
    for i in 0..8u32 {
        e.add_job(
            JobSpec::new(i, 0, 512),
            Box::new(AlignedProtocol::new(AlignedParams::new(1, 2, 9))),
        );
    }
    let r = e.run();
    let events = r.probes.as_ref().unwrap().events().unwrap();
    assert!(
        events
            .iter()
            .any(|rec| rec.job.is_none() && matches!(rec.event, ProbeEvent::SizeEstimate { .. })),
        "aligned class driver never engaged"
    );

    let mut found = false;
    for seed in 0..10u64 {
        let mut e = Engine::new(EngineConfig::default().cohort().with_probe(probe()), seed);
        for i in 0..6u32 {
            e.add_job(
                JobSpec::new(i, 0, 1 << 13),
                Box::new(PunctualProtocol::new(PunctualParams::laptop())),
            );
        }
        let r = e.run();
        let events = r.probes.as_ref().unwrap().events().unwrap();
        if events
            .iter()
            .any(|rec| rec.job.is_none() && matches!(rec.event, ProbeEvent::LeaderElected))
        {
            found = true;
            break;
        }
    }
    assert!(found, "punctual class driver never elected a leader");
}

#[test]
fn aggregate_contention_accounting_matches_exact() {
    // Satellite: `SimReport.contention` must agree between the exact and
    // aggregate paths — the driver declares `m·p` on sampled steps and `m`
    // on deterministic ones, mirroring the per-job `tx_probability` sum.
    // Dense scheduling plus tracing on both sides (the engine only tallies
    // contention while a trace sink records), and a clean channel so both
    // paths see identical feedback histories.
    let run = |cfg: EngineConfig| {
        let mut e = Engine::new(cfg.dense().with_trace(), 11);
        for i in 0..16u32 {
            e.add_job(
                JobSpec::new(i, 0, 512),
                Box::new(AlignedProtocol::new(AlignedParams::new(1, 2, 9))),
            );
        }
        e.run()
    };
    let exact = run(EngineConfig::aligned());
    let agg = run(EngineConfig::aligned().cohort());
    assert!(
        exact.contention_stats.measured_slots > 0 && agg.contention_stats.measured_slots > 0,
        "contention must be measured on both paths"
    );
    let me = exact.contention_stats.mean().unwrap();
    let ma = agg.contention_stats.mean().unwrap();
    // Same declared-probability law, different coins: means agree within
    // 20% relative (both paths measure hundreds of slots).
    assert!(
        (me - ma).abs() <= 0.2 * me.max(ma),
        "mean declared contention diverges: exact {me} vs aggregate {ma}"
    );
}

#[test]
fn cohort_mode_is_deterministic_per_seed() {
    // Same seed ⇒ same cohort draws ⇒ identical outcomes, independent of
    // thread scheduling (the cohort stream is derived, not shared).
    let config = EngineConfig {
        fidelity: Fidelity::Cohort,
        ..EngineConfig::default()
    };
    let run = || {
        let mut e = Engine::new(config.clone(), 77);
        for i in 0..40u32 {
            e.add_job(
                JobSpec::new(i, 0, 300),
                Box::new(FixedProbability::new(0.02)),
            );
        }
        e.run().outcomes().to_vec()
    };
    assert_eq!(run(), run());
}
