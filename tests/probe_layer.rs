//! Probe-layer end-to-end guarantees on long runs: the ring sink holds a
//! million-slot run in fixed memory, keeping exactly the tail of the
//! record stream, in both scheduling modes.

use contention_deadlines::protocols::Uniform;
use contention_deadlines::sim::jamming::{JamPolicy, Jammer};
use contention_deadlines::sim::prelude::*;

const HORIZON: u64 = 1_000_000;

/// Four UNIFORM jobs over a 10⁶-slot window, with every would-be success
/// jammed so no job retires early: the run is pinned to the full horizon.
fn engine(config: EngineConfig, seed: u64) -> Engine {
    let mut e = Engine::new(config, seed);
    e.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 1.0));
    for i in 0..4 {
        e.add_job(JobSpec::new(i, 0, HORIZON), Box::new(Uniform::new(8)));
    }
    e
}

#[test]
fn ring_sink_bounds_memory_over_a_million_dense_slots() {
    let capacity = 1024u64;
    let probe = ProbeSpec::new().with(SinkSpec::Ring { capacity });
    let r = engine(EngineConfig::default().dense().with_probe(probe), 21).run();
    assert_eq!(r.slots_run, HORIZON);
    let (records, dropped) = r.probes.as_ref().unwrap().ring().expect("ring sink");
    // Dense mode pushes one record per slot; the ring retains exactly the
    // last `capacity` of them and counts the rest.
    assert_eq!(records.len() as u64, capacity);
    assert_eq!(dropped, HORIZON - capacity);
    assert_eq!(records[0].slot, HORIZON - capacity);
    assert_eq!(records.last().unwrap().slot, HORIZON - 1);
}

#[test]
fn ring_sink_stays_bounded_with_gap_records() {
    // Event-driven mode run-length-encodes parked stretches, so the record
    // stream is tiny; a deliberately small capacity still forces drops and
    // the bound still holds.
    let capacity = 16u64;
    let probe = ProbeSpec::new().with(SinkSpec::Ring { capacity });
    let r = engine(EngineConfig::default().with_probe(probe), 22).run();
    assert_eq!(r.slots_run, HORIZON);
    let (records, dropped) = r.probes.as_ref().unwrap().ring().expect("ring sink");
    assert!(records.len() as u64 <= capacity);
    assert!(dropped > 0, "32 attempt slots plus gaps must overflow 16");
    // The retained tail still ends at the run's last covered slot.
    let last = records.last().unwrap();
    assert_eq!(last.slot + last.covered_slots(), HORIZON);
}
