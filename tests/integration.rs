//! Cross-crate integration tests: workloads feed the simulator, protocols
//! from `dcr-core` and `dcr-baselines` run on them, statistics summarize
//! the outcome — the full pipeline the experiment harness is built from.

use contention_deadlines::baselines::scheduled::{edf_assignment, scheduled_protocols};
use contention_deadlines::baselines::{BinaryExponentialBackoff, Sawtooth};
use contention_deadlines::protocols::{
    AlignedParams, AlignedProtocol, PunctualParams, PunctualProtocol, Uniform,
};
use contention_deadlines::sim::prelude::*;
use contention_deadlines::stats::Proportion;
use contention_deadlines::workloads::generators::{
    aligned_classes, batch, harmonic, poisson, thin_to_feasible, ClassSpec,
};
use contention_deadlines::workloads::transforms::{trimmed, trimmed_window};
use contention_deadlines::workloads::{edf_feasible, is_gamma_slack_feasible, measured_slack};
use rand::SeedableRng;

#[test]
fn aligned_pipeline_generator_to_stats() {
    // Generate a certified multi-class instance, run ALIGNED, summarize.
    let params = AlignedParams::new(1, 2, 9);
    let instance = aligned_classes(
        &[
            ClassSpec {
                class: 9,
                jobs_per_window: 2,
            },
            ClassSpec {
                class: 11,
                jobs_per_window: 4,
            },
        ],
        1 << 12,
        None,
    );
    assert!(is_gamma_slack_feasible(&instance.jobs, 1.0 / 16.0));

    let mut hits = 0u64;
    let trials = 20u64;
    for seed in 0..trials {
        let mut engine = Engine::new(EngineConfig::aligned(), seed);
        engine.add_jobs(&instance.jobs, AlignedProtocol::factory(params));
        let report = engine.run();
        hits += (report.successes() == instance.n()) as u64;
    }
    let p = Proportion::new(hits, trials);
    assert!(p.estimate() > 0.8, "all-delivered rate {p}");
}

#[test]
fn punctual_pipeline_on_dynamic_traffic() {
    let mut rng = SeedSeq::new(3).rng(contention_deadlines::sim::rng::StreamLabel::Workload, 0);
    let raw = poisson(0.01, 1 << 15, &[1 << 13], &mut rng);
    let instance = thin_to_feasible(raw, 1.0 / 16.0);
    assert!(instance.n() > 5, "need some traffic, got {}", instance.n());

    let mut engine = Engine::new(EngineConfig::default(), 11);
    engine.add_jobs(
        &instance.jobs,
        PunctualProtocol::factory(PunctualParams::laptop()),
    );
    let report = engine.run();
    assert!(
        report.success_fraction() > 0.7,
        "delivered {}",
        report.success_fraction()
    );
}

#[test]
fn feasibility_checker_agrees_with_edf_assignment() {
    // `edf_feasible(jobs, 1)` (workloads crate) and `edf_assignment`
    // (baselines crate) are two independent implementations of the same
    // question for unit jobs — they must agree.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    for trial in 0..50 {
        use rand::Rng;
        let n = rng.gen_range(1..30usize);
        let jobs: Vec<JobSpec> = (0..n)
            .map(|i| {
                let r = rng.gen_range(0..40u64);
                let w = rng.gen_range(1..12u64);
                JobSpec::new(i as u32, r, r + w)
            })
            .collect();
        assert_eq!(
            edf_feasible(&jobs, 1),
            edf_assignment(&jobs).is_some(),
            "trial {trial}: {jobs:?}"
        );
    }
}

#[test]
fn genie_schedule_executes_collision_free() {
    let instance = thin_to_feasible(
        {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
            contention_deadlines::workloads::generators::random_unaligned(
                60, 1024, 16, 128, &mut rng,
            )
        },
        0.5,
    );
    let protos = scheduled_protocols(&instance.jobs).expect("thinned => feasible");
    let mut it = protos.into_iter();
    let mut engine = Engine::new(EngineConfig::default(), 0);
    engine.add_jobs(&instance.jobs, move |_| Box::new(it.next().unwrap()));
    let report = engine.run();
    assert_eq!(report.successes(), instance.n());
    assert_eq!(report.counts.collision, 0);
}

#[test]
fn core_trim_matches_workloads_trim() {
    // The deliberately duplicated trimming arithmetic (core::punctual::trim
    // vs workloads::transforms) must agree everywhere.
    for (r, d) in [(0u64, 9u64), (3, 21), (100, 1000), (17, 18), (5, 2053)] {
        let (a_start, a_end) = trimmed_window(r, d);
        let (b_start, b_end) =
            contention_deadlines::protocols::punctual::trim::trim_virtual(r, d).unwrap();
        assert_eq!((a_start, a_end), (b_start, b_end), "interval [{r},{d})");
    }
}

#[test]
fn lemma15_trimming_preserves_quarter_slack() {
    // A 4γ-feasible instance must stay γ-feasible after trimming.
    let instance = {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let raw = contention_deadlines::workloads::generators::random_unaligned(
            200, 8192, 64, 512, &mut rng,
        );
        thin_to_feasible(raw, 1.0 / 16.0) // 4γ-slack with γ = 1/4... (1/16 = 4·1/64)
    };
    let t = trimmed(&instance);
    assert!(t.is_aligned());
    // Lemma 15 with 1/γ = 4: trimmed(1/16-slack) is 1/4-slack feasible.
    assert!(
        is_gamma_slack_feasible(&t.jobs, 1.0 / 4.0),
        "trimmed slack = {:?}",
        measured_slack(&t.jobs)
    );
}

#[test]
fn all_protocols_run_the_same_batch_without_panic() {
    let instance = batch(12, 1 << 12);
    type Factory = Box<dyn FnMut(&JobSpec) -> Box<dyn Protocol>>;
    let factories: Vec<(&str, Factory)> = vec![
        (
            "uniform",
            Box::new(|_: &JobSpec| Box::new(Uniform::single()) as Box<dyn Protocol>),
        ),
        ("beb", Box::new(BinaryExponentialBackoff::factory(1024))),
        ("sawtooth", Box::new(Sawtooth::factory())),
        (
            "punctual",
            Box::new(PunctualProtocol::factory(PunctualParams::laptop())),
        ),
    ];
    for (name, factory) in factories {
        let mut engine = Engine::new(EngineConfig::default(), 77);
        engine.add_jobs(&instance.jobs, factory);
        let report = engine.run();
        assert_eq!(report.outcomes().len(), 12, "{name}");
    }
}

#[test]
fn harmonic_instance_feasibility_matches_lemma5_setup() {
    // The Lemma 5 instance is γ-slack feasible by construction.
    let inst = harmonic(64, 4);
    assert!(is_gamma_slack_feasible(&inst.jobs, 0.25));
    assert_eq!(measured_slack(&inst.jobs), Some(4));
}

#[test]
fn jamming_composes_with_protocols_and_metrics() {
    let instance = batch(4, 1 << 11);
    let mut engine = Engine::new(EngineConfig::aligned().with_trace(), 13);
    engine.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 0.3));
    engine.add_jobs(
        &instance.jobs,
        AlignedProtocol::factory(AlignedParams::new(2, 2, 11)),
    );
    let report = engine.run();
    // Trace tallies must reconcile with the running counters.
    let tally = contention_deadlines::sim::trace::tally(report.trace.as_ref().unwrap());
    assert_eq!(tally.jammed, report.counts.jammed);
    assert_eq!(tally.success, report.counts.success);
    // Adversary counters surface in the report and reconcile too: every
    // successful jam is an attempt that landed.
    assert_eq!(report.jam_stats.succeeded, report.counts.jammed);
    assert!(report.jam_stats.attempted >= report.jam_stats.succeeded);
}

#[test]
fn jam_success_ratio_matches_configured_p_jam() {
    // Regression for "jam attempts are lost": with the counters surfaced
    // in SimReport, the empirical success ratio over a Monte-Carlo batch
    // must statistically match the configured p_jam. 200 trials × ≥8
    // attempts each gives >1600 Bernoulli(0.35) samples; the observed
    // ratio lies within ±0.05 of 0.35 except with negligible probability.
    let p_jam = 0.35;
    let instance = batch(8, 1 << 11);
    let results = run_trials(200, 0xA77E, |_, seed| {
        let mut engine = Engine::new(EngineConfig::aligned(), seed);
        engine.set_jammer(Jammer::new(JamPolicy::AllSuccesses, p_jam));
        engine.add_jobs(
            &instance.jobs,
            AlignedProtocol::factory(AlignedParams::new(2, 2, 11)),
        );
        let r = engine.run();
        (r.jam_stats.attempted, r.jam_stats.succeeded)
    });
    let attempted: u64 = results.iter().map(|t| t.value.0).sum();
    let succeeded: u64 = results.iter().map(|t| t.value.1).sum();
    assert!(attempted > 1_000, "adversary barely attempted: {attempted}");
    let ratio = succeeded as f64 / attempted as f64;
    assert!(
        (ratio - p_jam).abs() < 0.05,
        "succeeded/attempted = {succeeded}/{attempted} = {ratio:.3}, configured p_jam {p_jam}"
    );
}

#[test]
fn clocked_equals_aligned_on_aligned_instances() {
    // On power-of-2-aligned windows, CLOCKED's trim is the identity, so it
    // must reproduce ALIGNED decision-for-decision: same seeds, same
    // outcomes, same channel counters. A cross-protocol differential test.
    use contention_deadlines::protocols::{ClockedParams, ClockedProtocol};
    let params = AlignedParams::new(1, 2, 9);
    let instance = aligned_classes(
        &[
            ClassSpec {
                class: 9,
                jobs_per_window: 3,
            },
            ClassSpec {
                class: 10,
                jobs_per_window: 2,
            },
        ],
        1 << 11,
        None,
    );
    for seed in [1u64, 7, 42] {
        let mut a = Engine::new(EngineConfig::aligned(), seed);
        a.add_jobs(&instance.jobs, AlignedProtocol::factory(params));
        let ra = a.run();

        let mut c = Engine::new(EngineConfig::aligned(), seed);
        c.add_jobs(
            &instance.jobs,
            ClockedProtocol::factory(ClockedParams {
                aligned: params,
                lambda: 4,
            }),
        );
        let rc = c.run();

        assert_eq!(ra.outcomes(), rc.outcomes(), "seed {seed}");
        assert_eq!(ra.counts, rc.counts, "seed {seed}");
    }
}

#[test]
fn deterministic_replay_across_crate_boundaries() {
    let make = || {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let raw = poisson(0.02, 1 << 13, &[1 << 12], &mut rng);
        thin_to_feasible(raw, 1.0 / 8.0)
    };
    let run = |instance: &contention_deadlines::workloads::Instance| {
        let mut engine = Engine::new(EngineConfig::default(), 99);
        engine.add_jobs(
            &instance.jobs,
            PunctualProtocol::factory(PunctualParams::laptop()),
        );
        let r = engine.run();
        (r.outcomes().to_vec(), r.counts)
    };
    let (a, b) = (make(), make());
    assert_eq!(a.jobs, b.jobs, "workload generation deterministic");
    assert_eq!(run(&a), run(&b), "simulation deterministic");
}
