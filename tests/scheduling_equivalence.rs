//! Event-driven vs dense scheduling equivalence.
//!
//! The wake-hint contract ([`Protocol::next_wake`]) promises that every
//! skipped `act()` call would have returned `Sleep` without drawing
//! randomness or mutating state. If any protocol's hint is wrong — too
//! eager by one slot, blind to a state transition, or misaligned with its
//! RNG draw schedule — the two scheduling modes diverge in outcomes,
//! channel counts, access counts, or trace tallies. This suite pins the
//! equivalence for every protocol in the workspace, across jammer
//! policies, on fixed seed grids and on proptest-generated populations.
//!
//! `declared_contention` is deliberately *not* compared: parked jobs are
//! not polled for their diagnostic `tx_probability`, so the per-slot
//! contention sum legitimately differs between modes.

mod testkit;

use contention_deadlines::baselines::scheduled::scheduled_protocols;
use contention_deadlines::baselines::windowed::{Schedule, WindowedBackoff};
use contention_deadlines::baselines::{BinaryExponentialBackoff, FixedProbability, Sawtooth};
use contention_deadlines::protocols::{
    AlignedParams, AlignedProtocol, PunctualParams, PunctualProtocol, Uniform,
};
use contention_deadlines::sim::engine::{Engine, EngineConfig, Protocol};
use contention_deadlines::sim::jamming::{GilbertElliott, Jammer, ReactiveJammer};
use contention_deadlines::sim::job::JobSpec;
use contention_deadlines::sim::metrics::SimReport;
use contention_deadlines::workloads::generators::{aligned_classes, batch, poisson, ClassSpec};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use testkit::{assert_config_equiv, jammer_pick, jammers, staggered};

/// Run the same simulation under both scheduling modes and assert every
/// non-diagnostic observable matches bit-for-bit.
fn assert_equiv<F>(label: &str, base: EngineConfig, jammer: Option<&Jammer>, seed: u64, setup: F)
where
    F: Fn(&mut Engine),
{
    assert_config_equiv(label, base.clone(), base.dense(), jammer, seed, setup);
}

#[test]
fn uniform_matches_dense() {
    for attempts in [1usize, 3] {
        for (jname, jammer) in jammers() {
            for seed in 0..8u64 {
                assert_equiv(
                    &format!("uniform k={attempts} jam={jname}"),
                    EngineConfig::default(),
                    jammer.as_ref(),
                    seed,
                    |e| {
                        for spec in staggered(12, 37, 1 << 10) {
                            e.add_job(spec, Box::new(Uniform::new(attempts)));
                        }
                    },
                );
            }
        }
    }
}

#[test]
fn scheduled_slots_match_dense() {
    let jobs: Vec<JobSpec> = batch(16, 64).jobs;
    let protos = scheduled_protocols(&jobs).expect("batch instance is EDF-feasible");
    for (jname, jammer) in jammers() {
        for seed in 0..4u64 {
            assert_equiv(
                &format!("scheduled jam={jname}"),
                EngineConfig::default(),
                jammer.as_ref(),
                seed,
                |e| {
                    for (spec, p) in jobs.iter().zip(&protos) {
                        e.add_job(*spec, Box::new(*p));
                    }
                },
            );
        }
    }
}

#[test]
fn windowed_backoff_matches_dense() {
    let schedules = [
        ("geometric", Schedule::Geometric { base: 2, first: 2 }),
        ("linear", Schedule::Linear { first: 4, step: 4 }),
        ("quadratic", Schedule::Quadratic { first: 2 }),
        ("fixed", Schedule::Fixed { size: 16 }),
    ];
    for (sname, schedule) in schedules {
        for (jname, jammer) in jammers() {
            for seed in 0..4u64 {
                assert_equiv(
                    &format!("windowed {sname} jam={jname}"),
                    EngineConfig::default(),
                    jammer.as_ref(),
                    seed,
                    |e| {
                        for spec in staggered(10, 53, 2048) {
                            e.add_job(spec, Box::new(WindowedBackoff::new(schedule)));
                        }
                    },
                );
            }
        }
    }
}

#[test]
fn sawtooth_matches_dense() {
    for (jname, jammer) in jammers() {
        for seed in 0..6u64 {
            assert_equiv(
                &format!("sawtooth jam={jname}"),
                EngineConfig::default(),
                jammer.as_ref(),
                seed,
                |e| {
                    for spec in staggered(8, 29, 4096) {
                        e.add_job(spec, Box::new(Sawtooth::new()));
                    }
                },
            );
        }
    }
}

#[test]
fn beb_matches_dense() {
    for (jname, jammer) in jammers() {
        for seed in 0..6u64 {
            assert_equiv(
                &format!("beb jam={jname}"),
                EngineConfig::default(),
                jammer.as_ref(),
                seed,
                |e| {
                    for spec in staggered(10, 41, 2048) {
                        e.add_job(spec, Box::new(BinaryExponentialBackoff::new()));
                    }
                },
            );
        }
    }
}

#[test]
fn hintless_protocol_matches_dense() {
    // FixedProbability opts out of wake hints (next_wake = None), so
    // event-driven mode degrades to dense polling for it: trivially
    // equivalent, but worth pinning since mixed populations rely on it.
    for seed in 0..4u64 {
        assert_equiv("aloha", EngineConfig::default(), None, seed, |e| {
            for spec in staggered(6, 17, 512) {
                e.add_job(spec, Box::new(FixedProbability::new(0.05)));
            }
        });
    }
}

#[test]
fn idle_striking_adversary_disables_gap_skip() {
    use contention_deadlines::sim::trace::SlotOutcome;

    // One lone Uniform job parks until its randomly chosen transmit slot,
    // giving the engine a long all-parked stretch it would love to skip.
    let spec = JobSpec::new(0, 0, 1 << 13);
    let run = |jammer: &Jammer| {
        let mut e = Engine::new(EngineConfig::default().with_trace(), 7);
        e.set_jammer(jammer.clone());
        e.add_job(spec, Box::new(Uniform::single()));
        e.run()
    };
    let live_gap_skipped =
        |r: &SimReport| {
            r.trace.as_ref().unwrap().iter().any(|rec| {
                matches!(rec.outcome, SlotOutcome::SilentGap { .. }) && rec.live_jobs > 0
            })
        };

    // Gilbert–Elliott strikes idle slots: the parked stretch must run slot
    // by slot (no SilentGap while the job is live), the bursts must land
    // on the supposedly idle channel, and the modes must stay bit-exact.
    let ge = Jammer::adaptive(Box::new(GilbertElliott::new(0.3, 0.3)), 1.0);
    let r = run(&ge);
    assert!(
        !live_gap_skipped(&r),
        "engine fast-forwarded past an idle-striking adversary"
    );
    assert!(
        r.counts.jammed > 0,
        "bursty faults never struck the idle channel"
    );
    for seed in 0..6u64 {
        assert_equiv(
            "ge-idle-strike",
            EngineConfig::default(),
            Some(&ge),
            seed,
            |e| {
                e.add_job(spec, Box::new(Uniform::single()));
            },
        );
    }

    // Contrast: the reactive jammer is stateful but never attempts on
    // silence, so the all-parked stretch IS skipped (the latent-bug fix
    // must not over-disable fast-forwarding) and the bulk
    // `on_silent_gap` replay keeps the modes bit-exact anyway.
    let reactive = Jammer::adaptive(Box::new(ReactiveJammer::new(1, 4)), 1.0);
    let r = run(&reactive);
    assert!(
        live_gap_skipped(&r),
        "non-idle-striking adversary should not inhibit fast-forwarding"
    );
    for seed in 0..6u64 {
        assert_equiv(
            "reactive-gap-replay",
            EngineConfig::default(),
            Some(&reactive),
            seed,
            |e| {
                e.add_job(spec, Box::new(Uniform::single()));
            },
        );
    }
}

#[test]
fn aligned_matches_dense() {
    let params = AlignedParams::new(1, 2, 8);
    let instance = aligned_classes(
        &[
            ClassSpec {
                class: 8,
                jobs_per_window: 3,
            },
            ClassSpec {
                class: 10,
                jobs_per_window: 4,
            },
        ],
        1 << 11,
        None,
    );
    for (jname, jammer) in jammers() {
        for seed in 0..4u64 {
            assert_equiv(
                &format!("aligned jam={jname}"),
                EngineConfig::aligned(),
                jammer.as_ref(),
                seed,
                |e| e.add_jobs(&instance.jobs, AlignedProtocol::factory(params)),
            );
        }
    }
}

#[test]
fn punctual_matches_dense() {
    let params = PunctualParams::laptop();
    let jobs = staggered(8, 113, 1 << 13);
    for (jname, jammer) in jammers() {
        for seed in 0..3u64 {
            assert_equiv(
                &format!("punctual jam={jname}"),
                EngineConfig::default(),
                jammer.as_ref(),
                seed,
                |e| e.add_jobs(&jobs, PunctualProtocol::factory(params)),
            );
        }
    }
}

#[test]
fn mixed_population_matches_dense() {
    // Hinting and hintless protocols sharing one channel: parked jobs must
    // keep hearing nothing while polled neighbours transact.
    for (jname, jammer) in jammers() {
        for seed in 0..4u64 {
            assert_equiv(
                &format!("mixed jam={jname}"),
                EngineConfig::default(),
                jammer.as_ref(),
                seed,
                |e| {
                    let w = 1 << 11;
                    let mut id = 0u32;
                    let mut add = |e: &mut Engine, r: u64, p: Box<dyn Protocol>| {
                        e.add_job(JobSpec::new(id, r, r + w), p);
                        id += 1;
                    };
                    add(e, 0, Box::new(Uniform::new(1)));
                    add(e, 13, Box::new(Sawtooth::new()));
                    add(e, 13, Box::new(BinaryExponentialBackoff::new()));
                    add(e, 64, Box::new(FixedProbability::new(0.02)));
                    add(
                        e,
                        77,
                        Box::new(WindowedBackoff::new(Schedule::Geometric {
                            base: 2,
                            first: 2,
                        })),
                    );
                    add(e, 150, Box::new(Uniform::new(3)));
                    add(e, 200, Box::new(Sawtooth::new()));
                },
            );
        }
    }
}

#[test]
fn poisson_punctual_matches_dense() {
    // Arrival-driven population with idle gaps between bursts: exercises
    // the interaction of idle fast-forward with parked wake slots.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let instance = poisson(0.005, 1 << 13, &[1 << 12, 1 << 13], &mut rng);
    if instance.jobs.is_empty() {
        return;
    }
    let params = PunctualParams::laptop();
    for seed in 0..3u64 {
        assert_equiv(
            "poisson-punctual",
            EngineConfig::default(),
            None,
            seed,
            |e| e.add_jobs(&instance.jobs, PunctualProtocol::factory(params)),
        );
    }
}

/// Run with Chrome-trace + aggregating sinks attached and return both
/// outputs in serialized form.
fn probe_outputs(config: EngineConfig, seed: u64, setup: &dyn Fn(&mut Engine)) -> (String, String) {
    use contention_deadlines::sim::probe::{ProbeSpec, SinkSpec};
    let probe = ProbeSpec::new()
        .with(SinkSpec::ChromeTrace)
        .with(SinkSpec::Aggregate);
    let mut engine = Engine::new(config.with_probe(probe), seed);
    setup(&mut engine);
    let report = engine.run();
    let probes = report.probes.expect("probe configured");
    let chrome = probes.chrome_trace().expect("chrome sink").to_string();
    let agg = serde_json::to_string(probes.aggregate().expect("aggregate sink"))
        .expect("aggregate serializes");
    (chrome, agg)
}

/// Scheduling-mode determinism of the probe sinks: the Chrome trace and
/// the aggregate report must be byte-identical between event-driven and
/// dense runs of the same seed. Scheduling-dependent events (GapSkip,
/// WakeQueueStats) are excluded from the Chrome render by design; every
/// protocol-emitted event must land on the same slot in both modes.
#[test]
fn probe_sinks_byte_identical_across_modes() {
    let params = PunctualParams::laptop();
    let jobs = staggered(6, 113, 1 << 12);
    let setup = |e: &mut Engine| e.add_jobs(&jobs, PunctualProtocol::factory(params));
    for seed in 0..3u64 {
        let (chrome_e, agg_e) = probe_outputs(EngineConfig::default(), seed, &setup);
        let (chrome_d, agg_d) = probe_outputs(EngineConfig::default().dense(), seed, &setup);
        assert_eq!(chrome_e, chrome_d, "punctual chrome diverges (seed {seed})");
        assert_eq!(agg_e, agg_d, "punctual aggregate diverges (seed {seed})");
    }

    let aparams = AlignedParams::new(1, 2, 8);
    let instance = aligned_classes(
        &[
            ClassSpec {
                class: 8,
                jobs_per_window: 3,
            },
            ClassSpec {
                class: 10,
                jobs_per_window: 4,
            },
        ],
        1 << 11,
        None,
    );
    let setup = |e: &mut Engine| e.add_jobs(&instance.jobs, AlignedProtocol::factory(aparams));
    for seed in 0..3u64 {
        let (chrome_e, agg_e) = probe_outputs(EngineConfig::aligned(), seed, &setup);
        let (chrome_d, agg_d) = probe_outputs(EngineConfig::aligned().dense(), seed, &setup);
        assert_eq!(chrome_e, chrome_d, "aligned chrome diverges (seed {seed})");
        assert_eq!(agg_e, agg_d, "aligned aggregate diverges (seed {seed})");
    }
}

/// Cohort-fidelity probe parity: the aggregate class drivers buffer their
/// events locally and only record while the probe bus is attending, so two
/// guarantees must hold on top of the exact-path parity above. First,
/// attending must not perturb the run — outcomes with the event sink
/// attached are bit-identical to the bare run of the same seed. Second,
/// when attended, the serialized event stream (which now includes the
/// driver's job-less `SizeEstimate`/`PhaseEnter`/`LeaderElected` records)
/// must be byte-identical between event-driven and dense scheduling.
#[test]
fn cohort_probe_events_byte_identical_when_attended() {
    use contention_deadlines::sim::probe::{ProbeEvent, ProbeSpec, SinkSpec};

    let event_bytes = |config: EngineConfig, seed: u64, setup: &dyn Fn(&mut Engine)| {
        let probe = ProbeSpec::new().with(SinkSpec::Events);
        let mut engine = Engine::new(config.with_probe(probe), seed);
        setup(&mut engine);
        let report = engine.run();
        // Scheduling-diagnostic records (gap skips, wake-queue stats) exist
        // only in event-driven mode by design; parity is over everything
        // the protocols and class drivers emit.
        let events: Vec<_> = report
            .probes
            .as_ref()
            .unwrap()
            .events()
            .unwrap()
            .iter()
            .filter(|rec| {
                !matches!(
                    rec.event,
                    ProbeEvent::GapSkip { .. } | ProbeEvent::WakeQueueStats { .. }
                )
            })
            .cloned()
            .collect();
        assert!(
            events.iter().any(|rec| rec.job.is_none()),
            "no aggregate-driver records: parity would be vacuous"
        );
        let bytes = serde_json::to_string(&events).expect("events serialize");
        (bytes, report.outcomes().to_vec())
    };
    let bare_outcomes = |config: EngineConfig, seed: u64, setup: &dyn Fn(&mut Engine)| {
        let mut engine = Engine::new(config, seed);
        setup(&mut engine);
        engine.run().outcomes().to_vec()
    };

    let aparams = AlignedParams::new(1, 2, 9);
    let setup = |e: &mut Engine| {
        for i in 0..16u32 {
            e.add_job(
                JobSpec::new(i, 0, 512),
                Box::new(AlignedProtocol::new(aparams)),
            );
        }
    };
    for seed in 0..3u64 {
        let base = EngineConfig::aligned().cohort();
        let (ev, out) = event_bytes(base.clone(), seed, &setup);
        let (dv, dout) = event_bytes(base.clone().dense(), seed, &setup);
        assert_eq!(ev, dv, "aligned cohort events diverge (seed {seed})");
        assert_eq!(out, dout, "aligned cohort outcomes diverge (seed {seed})");
        assert_eq!(
            out,
            bare_outcomes(base, seed, &setup),
            "attending perturbed the aligned cohort run (seed {seed})"
        );
    }

    let pparams = PunctualParams::laptop();
    let setup = |e: &mut Engine| {
        for i in 0..6u32 {
            e.add_job(
                JobSpec::new(i, 0, 1 << 12),
                Box::new(PunctualProtocol::new(pparams)),
            );
        }
    };
    for seed in 0..3u64 {
        let base = EngineConfig::default().cohort();
        let (ev, out) = event_bytes(base.clone(), seed, &setup);
        let (dv, dout) = event_bytes(base.clone().dense(), seed, &setup);
        assert_eq!(ev, dv, "punctual cohort events diverge (seed {seed})");
        assert_eq!(out, dout, "punctual cohort outcomes diverge (seed {seed})");
        assert_eq!(
            out,
            bare_outcomes(base, seed, &setup),
            "attending perturbed the punctual cohort run (seed {seed})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(testkit::cases(24)))]

    /// Random mixed populations, windows, releases, and jammers: the two
    /// scheduling modes must agree on every observable.
    #[test]
    fn random_population_equivalence(
        seed in 0u64..1_000_000,
        n in 1usize..10,
        log_w in 6u32..12,
        jam_kind in 0usize..8,
        proto_picks in proptest::collection::vec(0usize..6, 10..11),
        releases in proptest::collection::vec(0u64..512, 10..11),
    ) {
        let w = 1u64 << log_w;
        let jammer = jammer_pick(jam_kind);
        assert_equiv(
            "proptest-mixed",
            EngineConfig::default(),
            jammer.as_ref(),
            seed,
            |e| {
                for i in 0..n {
                    let spec = JobSpec::new(i as u32, releases[i], releases[i] + w);
                    e.add_job(spec, testkit::protocol_pick(proto_picks[i]));
                }
            },
        );
    }

    /// Trial-arena reuse: one engine cycled through [`Engine::reset`]
    /// across a batch of trials must produce byte-identical reports to a
    /// freshly allocated engine per trial, across protocols × adversaries
    /// × scheduling modes. (Byte-identical literally: the serialized
    /// reports are compared as strings, with only the wall-clock
    /// `engine_nanos` field zeroed on both sides.)
    #[test]
    fn pooled_reuse_equals_fresh(
        seeds in proptest::collection::vec(0u64..1_000_000, 3..6),
        n in 1usize..8,
        log_w in 6u32..11,
        dense_pick in 0usize..2,
        jam_picks in proptest::collection::vec(0usize..9, 5..6),
        proto_picks in proptest::collection::vec(0usize..6, 8..9),
        releases in proptest::collection::vec(0u64..256, 8..9),
    ) {
        let w = 1u64 << log_w;
        let grid = jammers();
        let base = EngineConfig::default().with_trace();
        let config = if dense_pick == 1 { base.dense() } else { base };
        let setup = |e: &mut Engine| {
            for i in 0..n {
                let spec = JobSpec::new(i as u32, releases[i], releases[i] + w);
                e.add_job(spec, testkit::protocol_pick(proto_picks[i]));
            }
        };
        // The reused engine survives the whole batch, like one runner
        // worker's engine; the fresh engine bypasses the arena entirely.
        let mut reused = Engine::new(config.clone(), 0);
        for (t, &seed) in seeds.iter().enumerate() {
            let jammer = grid[jam_picks[t] % grid.len()].1.clone();
            let mut fresh = Engine::fresh(config.clone(), seed);
            if let Some(j) = &jammer {
                fresh.set_jammer(j.clone());
            }
            setup(&mut fresh);
            let mut a = fresh.run();

            reused.reset(seed);
            if let Some(j) = &jammer {
                reused.set_jammer(j.clone());
            }
            setup(&mut reused);
            let mut b = reused.run();

            a.engine_nanos = 0;
            b.engine_nanos = 0;
            let aj = serde_json::to_string(&a).expect("serialize fresh report");
            let bj = serde_json::to_string(&b).expect("serialize reused report");
            prop_assert_eq!(aj, bj, "trial {} diverged after reuse", t);
        }
    }

    /// Random PUNCTUAL populations: the protocol with the most intricate
    /// wake mask (round-position dependent, phase-dependent) on random
    /// staggered windows.
    #[test]
    fn random_punctual_equivalence(
        seed in 0u64..1_000_000,
        n in 2u32..7,
        spread in 1u64..200,
    ) {
        let params = PunctualParams::laptop();
        let jobs = staggered(n, spread, 1 << 12);
        assert_equiv(
            "proptest-punctual",
            EngineConfig::default(),
            None,
            seed,
            |e| e.add_jobs(&jobs, PunctualProtocol::factory(params)),
        );
    }
}
