//! Serde round-trips for the public data types — traces, reports, and
//! parameter sets are meant to be archived as JSON next to experiment
//! output, so serialization must be lossless.

use contention_deadlines::protocols::{AlignedParams, PunctualParams};
use contention_deadlines::sim::prelude::*;
use contention_deadlines::workloads::generators::{batch, harmonic};
use contention_deadlines::workloads::Instance;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn job_spec_roundtrips() {
    let j = JobSpec::new(7, 100, 612);
    assert_eq!(roundtrip(&j), j);
}

#[test]
fn instance_roundtrips() {
    let inst = harmonic(12, 4);
    let back: Instance = roundtrip(&inst);
    assert_eq!(back.jobs, inst.jobs);
    assert_eq!(back.name, inst.name);
}

#[test]
fn params_roundtrip() {
    let a = AlignedParams::new(2, 8, 9);
    assert_eq!(roundtrip(&a), a);
    let p = PunctualParams::laptop();
    assert_eq!(roundtrip(&p), p);
    let paper = PunctualParams::paper();
    assert_eq!(roundtrip(&paper), paper);
}

#[test]
fn sim_report_roundtrips_with_trace() {
    use contention_deadlines::protocols::Uniform;
    let inst = batch(4, 64);
    let mut e = Engine::new(EngineConfig::default().with_trace(), 9);
    e.add_jobs(&inst.jobs, |_| Box::new(Uniform::single()));
    let report = e.run();

    let json = serde_json::to_string(&report).expect("serialize");
    let back: contention_deadlines::sim::metrics::SimReport =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.outcomes(), report.outcomes());
    assert_eq!(back.counts, report.counts);
    assert_eq!(back.accesses, report.accesses);
    assert_eq!(back.slots_run, report.slots_run);
    assert_eq!(
        back.trace.as_ref().map(|t| t.len()),
        report.trace.as_ref().map(|t| t.len())
    );
}

#[test]
fn payload_and_feedback_roundtrip() {
    let payloads = [
        Payload::Data(3),
        Payload::Control(ControlMsg {
            kind: 21,
            a: 1,
            b: 2,
            c: 3,
        }),
    ];
    for p in payloads {
        assert_eq!(roundtrip(&p), p);
    }
    let feedbacks = [
        Feedback::Silent,
        Feedback::Noise,
        Feedback::Success {
            src: 5,
            payload: Payload::Data(5),
        },
    ];
    for f in feedbacks {
        assert_eq!(roundtrip(&f), f);
    }
}

#[test]
fn jam_policy_roundtrips() {
    for policy in [
        JamPolicy::Never,
        JamPolicy::AllSuccesses,
        JamPolicy::ControlOnly,
        JamPolicy::DataOnly,
        JamPolicy::Random { attempt: 0.25 },
    ] {
        assert_eq!(roundtrip(&policy), policy);
    }
}

#[test]
fn adversary_spec_roundtrips() {
    for spec in [
        AdversarySpec::Policy(JamPolicy::Random { attempt: 0.1 }),
        AdversarySpec::Budgeted {
            budget: 12,
            data_only: true,
        },
        AdversarySpec::Reactive {
            k: 3,
            reset_gap: 32,
        },
        AdversarySpec::Bursty {
            p_enter: 0.05,
            p_exit: 0.25,
        },
    ] {
        assert_eq!(roundtrip(&spec), spec);
    }
}

#[test]
fn sim_report_with_jam_stats_roundtrips() {
    use contention_deadlines::protocols::Uniform;
    let inst = batch(4, 64);
    let mut e = Engine::new(EngineConfig::default(), 11);
    e.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 0.5));
    e.add_jobs(&inst.jobs, |_| Box::new(Uniform::single()));
    let report = e.run();
    assert!(report.jam_stats.attempted > 0);
    let back: contention_deadlines::sim::metrics::SimReport = roundtrip(&report);
    assert_eq!(back.jam_stats, report.jam_stats);
}

#[test]
fn sim_report_without_jam_stats_field_still_loads() {
    // Artifacts archived before the adversary counters existed lack the
    // `jam_stats` field; deserialization must default it, not fail.
    use contention_deadlines::protocols::Uniform;
    let inst = batch(2, 32);
    let mut e = Engine::new(EngineConfig::default(), 13);
    e.add_jobs(&inst.jobs, |_| Box::new(Uniform::single()));
    let report = e.run();
    let mut json: serde_json::Value = serde_json::to_value(&report).expect("serialize");
    match &mut json {
        serde_json::Value::Object(pairs) => pairs.retain(|(key, _)| key != "jam_stats"),
        other => panic!("SimReport should serialize to an object, got {other:?}"),
    }
    let back: contention_deadlines::sim::metrics::SimReport =
        serde_json::from_value(&json).expect("deserialize legacy report");
    assert_eq!(back.jam_stats, JamStats::default());
    assert_eq!(back.counts, report.counts);
}

#[test]
fn probe_spec_roundtrips() {
    let spec = ProbeSpec::new()
        .with(SinkSpec::Ring { capacity: 4096 })
        .with(SinkSpec::Aggregate)
        .with(SinkSpec::ChromeTrace)
        .with(SinkSpec::Sample { period: 64 })
        .with(SinkSpec::Events);
    assert_eq!(roundtrip(&spec), spec);
    assert_eq!(roundtrip(&ProbeSpec::default()), ProbeSpec::default());
}

#[test]
fn sim_report_with_probes_roundtrips() {
    // ProbeOutput carries histograms (no PartialEq), so compare the
    // serialized form: serialize → deserialize → serialize must be stable.
    use contention_deadlines::protocols::Uniform;
    let inst = batch(4, 64);
    let probe = ProbeSpec::new()
        .with(SinkSpec::Ring { capacity: 16 })
        .with(SinkSpec::Aggregate)
        .with(SinkSpec::Events);
    let mut e = Engine::new(EngineConfig::default().with_probe(probe), 9);
    e.add_jobs(&inst.jobs, |_| Box::new(Uniform::single()));
    let report = e.run();
    assert!(report.probes.is_some());
    let json = serde_json::to_string(&report).expect("serialize");
    let back: contention_deadlines::sim::metrics::SimReport =
        serde_json::from_str(&json).expect("deserialize");
    let json2 = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(json, json2);
    assert_eq!(back.sched_stats, report.sched_stats);
}

#[test]
fn sim_report_without_sched_stats_field_still_loads() {
    // Artifacts archived before the probe layer existed lack `sched_stats`
    // and `probes`; deserialization must default them, not fail.
    use contention_deadlines::protocols::Uniform;
    let inst = batch(2, 32);
    let mut e = Engine::new(EngineConfig::default(), 13);
    e.add_jobs(&inst.jobs, |_| Box::new(Uniform::single()));
    let report = e.run();
    let mut json: serde_json::Value = serde_json::to_value(&report).expect("serialize");
    match &mut json {
        serde_json::Value::Object(pairs) => {
            pairs.retain(|(key, _)| key != "sched_stats" && key != "probes")
        }
        other => panic!("SimReport should serialize to an object, got {other:?}"),
    }
    let back: contention_deadlines::sim::metrics::SimReport =
        serde_json::from_value(&json).expect("deserialize legacy report");
    assert_eq!(back.sched_stats, SchedStats::default());
    assert!(back.probes.is_none());
    assert_eq!(back.counts, report.counts);
}

#[test]
fn experiment_report_roundtrips() {
    use dcr_stats::{CheckResult, ExperimentReport, MetricRow, Param, Provenance, Timing};
    let report = ExperimentReport {
        schema_version: dcr_stats::report::SCHEMA_VERSION,
        experiment: "e1".into(),
        title: "demo".into(),
        seed: 0x5eed_2020,
        quick: true,
        params: vec![Param {
            name: "slots".into(),
            value: "4000".into(),
        }],
        rows: vec![
            MetricRow {
                cell: "C=1".into(),
                metric: "p_success".into(),
                value: 0.37,
                ci_lo: Some(0.35),
                ci_hi: Some(0.39),
                n: Some(4000),
            },
            MetricRow {
                cell: "C=1".into(),
                metric: "bound_lo".into(),
                value: 0.135,
                ci_lo: None,
                ci_hi: None,
                n: None,
            },
        ],
        checks: vec![CheckResult {
            name: "lemma2_sandwich".into(),
            passed: true,
            detail: "violations 0/11".into(),
        }],
        timing: Timing {
            wall_secs: 1.5,
            trials: 60,
            secs_per_trial: 0.025,
            slots_simulated: 44_000,
            slots_per_sec: 29_333.3,
        },
        provenance: Provenance {
            git_rev: Some("abc123".into()),
            git_dirty: Some(false),
            rustc_version: Some("rustc 1.75.0".into()),
            threads: 8,
        },
    };
    assert_eq!(roundtrip(&report), report);
}

#[test]
fn live_experiment_artifact_roundtrips_and_has_provenance() {
    // A real artifact from the harness: serialization is lossless and the
    // provenance block is populated in-process (rustc/git are best-effort
    // but thread count is always known).
    let out =
        dcr_bench::run_experiment_report("e5", &dcr_bench::ExpConfig::quick()).expect("e5 exists");
    let report = out.report;
    assert_eq!(roundtrip(&report), report);
    assert!(report.provenance.threads >= 1);
    assert!(report.timing.wall_secs >= 0.0);
    assert!(report.timing.slots_simulated == 0 || report.timing.slots_per_sec > 0.0);
    // The deterministic view round-trips too (the form archived for diffs).
    let view = report.deterministic_view();
    assert_eq!(roundtrip(&view), view);
}

#[test]
fn windowed_schedule_roundtrips() {
    use contention_deadlines::baselines::Schedule;
    for s in [
        Schedule::beb(),
        Schedule::Linear { first: 2, step: 3 },
        Schedule::Quadratic { first: 1 },
        Schedule::Fixed { size: 9 },
    ] {
        assert_eq!(roundtrip(&s), s);
    }
}
