//! Serde round-trips for the public data types — traces, reports, and
//! parameter sets are meant to be archived as JSON next to experiment
//! output, so serialization must be lossless.

use contention_deadlines::protocols::{AlignedParams, PunctualParams};
use contention_deadlines::sim::prelude::*;
use contention_deadlines::workloads::generators::{batch, harmonic};
use contention_deadlines::workloads::Instance;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn job_spec_roundtrips() {
    let j = JobSpec::new(7, 100, 612);
    assert_eq!(roundtrip(&j), j);
}

#[test]
fn instance_roundtrips() {
    let inst = harmonic(12, 4);
    let back: Instance = roundtrip(&inst);
    assert_eq!(back.jobs, inst.jobs);
    assert_eq!(back.name, inst.name);
}

#[test]
fn params_roundtrip() {
    let a = AlignedParams::new(2, 8, 9);
    assert_eq!(roundtrip(&a), a);
    let p = PunctualParams::laptop();
    assert_eq!(roundtrip(&p), p);
    let paper = PunctualParams::paper();
    assert_eq!(roundtrip(&paper), paper);
}

#[test]
fn sim_report_roundtrips_with_trace() {
    use contention_deadlines::protocols::Uniform;
    let inst = batch(4, 64);
    let mut e = Engine::new(EngineConfig::default().with_trace(), 9);
    e.add_jobs(&inst.jobs, |_| Box::new(Uniform::single()));
    let report = e.run();

    let json = serde_json::to_string(&report).expect("serialize");
    let back: contention_deadlines::sim::metrics::SimReport =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.outcomes(), report.outcomes());
    assert_eq!(back.counts, report.counts);
    assert_eq!(back.accesses, report.accesses);
    assert_eq!(back.slots_run, report.slots_run);
    assert_eq!(
        back.trace.as_ref().map(|t| t.len()),
        report.trace.as_ref().map(|t| t.len())
    );
}

#[test]
fn payload_and_feedback_roundtrip() {
    let payloads = [
        Payload::Data(3),
        Payload::Control(ControlMsg {
            kind: 21,
            a: 1,
            b: 2,
            c: 3,
        }),
    ];
    for p in payloads {
        assert_eq!(roundtrip(&p), p);
    }
    let feedbacks = [
        Feedback::Silent,
        Feedback::Noise,
        Feedback::Success {
            src: 5,
            payload: Payload::Data(5),
        },
    ];
    for f in feedbacks {
        assert_eq!(roundtrip(&f), f);
    }
}

#[test]
fn jam_policy_roundtrips() {
    for policy in [
        JamPolicy::Never,
        JamPolicy::AllSuccesses,
        JamPolicy::ControlOnly,
        JamPolicy::DataOnly,
        JamPolicy::Random { attempt: 0.25 },
    ] {
        assert_eq!(roundtrip(&policy), policy);
    }
}

#[test]
fn windowed_schedule_roundtrips() {
    use contention_deadlines::baselines::Schedule;
    for s in [
        Schedule::beb(),
        Schedule::Linear { first: 2, step: 3 },
        Schedule::Quadratic { first: 1 },
        Schedule::Fixed { size: 9 },
    ] {
        assert_eq!(roundtrip(&s), s);
    }
}
