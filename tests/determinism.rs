//! Determinism of the experiment harness: the same `--seed` must
//! reproduce the same measurements.
//!
//! Two runs of an experiment with an identical `ExpConfig` must produce
//! byte-identical text reports and structurally equal JSON artifacts —
//! after stripping the volatile fields (wall-clock timing, provenance)
//! via [`ExperimentReport::deterministic_view`].
//!
//! e5 covers the purely arithmetic path; e1 covers the Monte-Carlo path
//! through the engine, the runner's work-stealing thread pool (whose
//! scheduling order must not leak into results), and the seed-derivation
//! plumbing.
//!
//! [`ExperimentReport::deterministic_view`]: dcr_stats::ExperimentReport::deterministic_view

use dcr_bench::{run_experiment_report, ExpConfig};

fn assert_deterministic(id: &str) {
    let cfg = ExpConfig::quick();
    let a = run_experiment_report(id, &cfg).expect("known experiment id");
    let b = run_experiment_report(id, &cfg).expect("known experiment id");

    assert_eq!(a.text, b.text, "{id}: text reports must be byte-identical");

    let da = a.report.deterministic_view();
    let db = b.report.deterministic_view();
    assert_eq!(da, db, "{id}: deterministic views must be equal");

    // The JSON encodings of the deterministic views agree too — what a
    // downstream diff of two artifact directories would compare.
    let ja = serde_json::to_string_pretty(&da).unwrap();
    let jb = serde_json::to_string_pretty(&db).unwrap();
    assert_eq!(ja, jb, "{id}: deterministic JSON must be identical");
}

#[test]
fn e5_is_deterministic() {
    assert_deterministic("e5");
}

#[test]
fn e1_is_deterministic() {
    assert_deterministic("e1");
}

#[test]
fn different_seeds_change_monte_carlo_results() {
    let a = run_experiment_report("e1", &ExpConfig::quick()).unwrap();
    let other = ExpConfig {
        seed: 0xDEAD_BEEF,
        ..ExpConfig::quick()
    };
    let b = run_experiment_report("e1", &other).unwrap();
    assert_ne!(
        a.report.deterministic_view(),
        b.report.deterministic_view(),
        "a different seed must change the measured values"
    );
}

#[test]
fn volatile_fields_do_not_affect_deterministic_view() {
    let cfg = ExpConfig::quick();
    let r = run_experiment_report("e5", &cfg).unwrap().report;
    // The raw report carries volatile wall-clock timing...
    assert!(r.timing.wall_secs >= 0.0);
    // ...which the deterministic view zeroes out along with provenance.
    let d = r.deterministic_view();
    assert_eq!(d.timing, dcr_stats::Timing::default());
    assert_eq!(d.provenance, dcr_stats::Provenance::default());
    // Everything that encodes measurements survives.
    assert_eq!(d.rows, r.rows);
    assert_eq!(d.checks, r.checks);
    assert_eq!(d.params, r.params);
    assert_eq!(d.seed, r.seed);
}
