//! Differential testing of the vectorized slot kernel.
//!
//! [`Fidelity::Vectorized`] routes kernel-eligible jobs (those exposing a
//! [`CohortTx`] profile) through batched counter-based draws instead of
//! per-job protocol dispatch. Unlike cohort mode, the claim is **bit
//! identity**: the kernel evaluates the exact same `(job_key, slot,
//! phase)` positions the exact path's `gen_bool` / `gen_range` calls
//! would, so outcomes, channel counts, per-job access counts, slots_run,
//! and trace tallies must all match the exact engine bit-for-bit — per
//! seed, per adversary, per scheduling mode.
//!
//! The grid: pure single-probability ALOHA, multi-bucket ALOHA, one-shot
//! UNIFORM, and mixed kernel + exact-path populations, each crossed with
//! the full jammer grid and both scheduling modes, plus a proptest over
//! random populations. `declared_contention` is excluded as everywhere
//! else (parked and kernel-managed jobs are not polled for diagnostics).
//!
//! [`Fidelity::Vectorized`]: contention_deadlines::sim::engine::Fidelity::Vectorized
//! [`CohortTx`]: contention_deadlines::sim::engine::CohortTx

mod testkit;

use contention_deadlines::baselines::{FixedProbability, Sawtooth};
use contention_deadlines::protocols::{
    AlignedParams, AlignedProtocol, PunctualParams, PunctualProtocol, Uniform,
};
use contention_deadlines::sim::engine::{Engine, EngineConfig};
use contention_deadlines::sim::job::JobSpec;
use proptest::prelude::*;
use testkit::{assert_config_equiv, jammer_pick, jammers, staggered};

/// Exact vs vectorized under both scheduling modes, full observables.
fn assert_kernel_equiv<F>(label: &str, seed: u64, jammer_name: &str, setup: F)
where
    F: Fn(&mut Engine),
{
    let grid = jammers();
    let (jname, jammer) = grid
        .iter()
        .find(|(n, _)| *n == jammer_name)
        .expect("jammer name in grid");
    assert_config_equiv(
        &format!("{label} jam={jname} event"),
        EngineConfig::default(),
        EngineConfig::default().vectorized(),
        jammer.as_ref(),
        seed,
        &setup,
    );
    assert_config_equiv(
        &format!("{label} jam={jname} dense"),
        EngineConfig::default().dense(),
        EngineConfig::default().vectorized().dense(),
        jammer.as_ref(),
        seed,
        &setup,
    );
}

#[test]
fn aloha_single_bucket_matches_exact() {
    for (jname, _) in jammers() {
        for seed in 0..4u64 {
            assert_kernel_equiv("aloha", seed, jname, |e| {
                for spec in staggered(24, 37, 1 << 10) {
                    e.add_job(spec, Box::new(FixedProbability::new(0.04)));
                }
            });
        }
    }
}

#[test]
fn aloha_multi_bucket_matches_exact() {
    // Three probabilities and two deadline classes: six kernel buckets,
    // exercising bucket lookup, per-bucket expiry, and dense/sparse word
    // paths as lanes die off.
    let ps = [0.01f64, 0.05, 0.12];
    for (jname, _) in jammers() {
        for seed in 0..3u64 {
            assert_kernel_equiv("aloha-buckets", seed, jname, |e| {
                for i in 0..30u32 {
                    let r = u64::from(i % 5) * 11;
                    let w = if i % 2 == 0 { 600 } else { 900 };
                    e.add_job(
                        JobSpec::new(i, r, r + w),
                        Box::new(FixedProbability::new(ps[i as usize % 3])),
                    );
                }
            });
        }
    }
}

#[test]
fn uniform_oneshot_matches_exact() {
    for (jname, _) in jammers() {
        for seed in 0..4u64 {
            assert_kernel_equiv("uniform-oneshot", seed, jname, |e| {
                for spec in staggered(16, 53, 1 << 9) {
                    e.add_job(spec, Box::new(Uniform::single()));
                }
            });
        }
    }
}

#[test]
fn mixed_kernel_and_exact_population_matches_exact() {
    // Kernel-managed jobs sharing the channel with exact-path protocols
    // (including Uniform k=2, which is one-shot-ineligible): collisions,
    // single-transmitter resolution, and feedback fan-out must all see
    // the same channel in both modes.
    for (jname, _) in jammers() {
        for seed in 0..4u64 {
            assert_kernel_equiv("mixed", seed, jname, |e| {
                let w = 1u64 << 10;
                let mut id = 0u32;
                let mut add =
                    |e: &mut Engine,
                     r: u64,
                     p: Box<dyn contention_deadlines::sim::engine::Protocol>| {
                        e.add_job(JobSpec::new(id, r, r + w), p);
                        id += 1;
                    };
                add(e, 0, Box::new(FixedProbability::new(0.03)));
                add(e, 5, Box::new(Uniform::single()));
                add(e, 13, Box::new(Sawtooth::new()));
                add(e, 13, Box::new(Uniform::new(2)));
                add(e, 40, Box::new(FixedProbability::new(0.08)));
                add(e, 64, Box::new(Uniform::single()));
                add(e, 100, Box::new(FixedProbability::new(0.03)));
            });
        }
    }
}

#[test]
fn class_profile_protocols_fall_back_to_exact_under_vectorized() {
    // `CohortTx::Class` marks a protocol as aggregate-capable under
    // *cohort* fidelity only; the vectorized kernel has no class lanes, so
    // the engine must run these jobs on the exact per-job path and stay
    // bit-identical to the plain exact engine. ALIGNED additionally sharing
    // the channel with kernel-managed ALOHA lanes checks that the class
    // fallback doesn't disturb kernel feedback fan-out.
    let grid = jammers();
    for (jname, jammer) in &grid {
        for seed in 0..3u64 {
            assert_config_equiv(
                &format!("aligned-class-fallback jam={jname}"),
                EngineConfig::aligned(),
                EngineConfig::aligned().vectorized(),
                jammer.as_ref(),
                seed,
                |e| {
                    for i in 0..12u32 {
                        e.add_job(
                            JobSpec::new(i, 0, 512),
                            Box::new(AlignedProtocol::new(AlignedParams::new(1, 2, 9))),
                        );
                    }
                    for i in 12..24u32 {
                        e.add_job(
                            JobSpec::new(i, 0, 512),
                            Box::new(FixedProbability::new(0.02)),
                        );
                    }
                },
            );
            assert_config_equiv(
                &format!("punctual-class-fallback jam={jname}"),
                EngineConfig::default(),
                EngineConfig::default().vectorized(),
                jammer.as_ref(),
                seed,
                |e| {
                    for i in 0..5u32 {
                        e.add_job(
                            JobSpec::new(i, 0, 1 << 12),
                            Box::new(PunctualProtocol::new(PunctualParams::laptop())),
                        );
                    }
                },
            );
        }
    }
}

#[test]
fn kernel_engages_for_eligible_jobs() {
    // Guard against silently falling back to the exact path: a vectorized
    // run must *work* even though its eligible protocols are never polled.
    // A protocol that panics on any callback after construction proves the
    // kernel actually owns the job.
    use contention_deadlines::sim::engine::{Action, CohortTx, JobCtx, Protocol};
    use rand::RngCore;

    struct MustVectorize(f64);
    impl Protocol for MustVectorize {
        fn on_activate(&mut self, _ctx: &JobCtx, _rng: &mut dyn RngCore) {
            panic!("kernel-eligible job was activated on the exact path");
        }
        fn act(&mut self, _ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
            panic!("kernel-eligible job was polled");
        }
        fn cohort_tx(&self, _ctx: &JobCtx) -> Option<CohortTx> {
            Some(CohortTx::Constant { p: self.0 })
        }
    }

    let mut e = Engine::new(EngineConfig::default().vectorized(), 11);
    for i in 0..40u32 {
        e.add_job(JobSpec::new(i, 0, 400), Box::new(MustVectorize(0.05)));
    }
    let r = e.run();
    assert!(r.successes() > 0, "kernel produced no deliveries");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(testkit::cases(24)))]

    /// Random populations mixing kernel-eligible and exact-path
    /// protocols, random jammers, both scheduling modes: vectorized must
    /// stay bit-identical to exact everywhere.
    #[test]
    fn random_population_kernel_equivalence(
        seed in 0u64..1_000_000,
        n in 1usize..12,
        log_w in 6u32..11,
        jam_kind in 0usize..8,
        dense_pick in 0usize..2,
        proto_picks in proptest::collection::vec(0usize..6, 12..13),
        releases in proptest::collection::vec(0u64..256, 12..13),
    ) {
        let w = 1u64 << log_w;
        let jammer = jammer_pick(jam_kind);
        let base = if dense_pick == 1 {
            EngineConfig::default().dense()
        } else {
            EngineConfig::default()
        };
        assert_config_equiv(
            "proptest-kernel",
            base.clone(),
            base.vectorized(),
            jammer.as_ref(),
            seed,
            |e| {
                for i in 0..n {
                    let spec = JobSpec::new(i as u32, releases[i], releases[i] + w);
                    e.add_job(spec, testkit::protocol_pick(proto_picks[i]));
                }
            },
        );
    }
}
