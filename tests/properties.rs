//! Cross-crate property tests: randomized invariants over the feasibility
//! theory, window transforms, channel engine, and statistics.

use contention_deadlines::protocols::punctual::trim::trim_virtual;
use contention_deadlines::sim::prelude::*;
use contention_deadlines::stats::{Proportion, Summary};
use contention_deadlines::workloads::feasibility::{edf_feasible, hall_feasible};
use contention_deadlines::workloads::generators::thin_to_feasible;
use contention_deadlines::workloads::transforms::{round_window_pow2, trimmed_window};
use contention_deadlines::workloads::Instance;
use proptest::prelude::*;

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec((0u64..32, 1u64..16), 1..12).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (r, w))| JobSpec::new(i as u32, r, r + w))
            .collect()
    })
}

proptest! {
    /// The event-driven EDF sweep and the O(n²) Hall-condition check are
    /// independent implementations of preemptive single-machine
    /// feasibility — they must agree on every instance and job length.
    #[test]
    fn edf_equals_hall(jobs in arb_jobs(), len in 1u64..5) {
        prop_assert_eq!(edf_feasible(&jobs, len), hall_feasible(&jobs, len));
    }

    /// Feasibility is monotone: harder (longer) jobs can only break it.
    #[test]
    fn feasibility_monotone_in_job_len(jobs in arb_jobs(), len in 1u64..5) {
        if edf_feasible(&jobs, len + 1) {
            prop_assert!(edf_feasible(&jobs, len));
        }
    }

    /// Removing a job never makes an instance infeasible.
    #[test]
    fn feasibility_monotone_in_jobs(jobs in arb_jobs(), len in 1u64..4, drop in 0usize..12) {
        if edf_feasible(&jobs, len) {
            let mut fewer = jobs.clone();
            if drop < fewer.len() {
                fewer.remove(drop);
                prop_assert!(edf_feasible(&fewer, len));
            }
        }
    }

    /// `trimmed_window` always returns an aligned power-of-2 window inside
    /// the original, at least a quarter of its size — and the independent
    /// `dcr-core` implementation agrees exactly.
    #[test]
    fn trim_properties_and_agreement(r in 0u64..10_000, w in 1u64..5_000) {
        let d = r + w;
        let (ts, te) = trimmed_window(r, d);
        let tw = te - ts;
        prop_assert!(ts >= r && te <= d);
        prop_assert!(tw.is_power_of_two());
        prop_assert_eq!(ts % tw, 0);
        prop_assert!(4 * tw >= w);
        prop_assert_eq!(trim_virtual(r, d), Some((ts, te)));
    }

    /// Power-of-two rounding shrinks the window by less than half and
    /// keeps the release.
    #[test]
    fn pow2_rounding_bounds(r in 0u64..1_000, w in 1u64..10_000) {
        let j = JobSpec::new(0, r, r + w);
        let rounded = round_window_pow2(&j);
        prop_assert_eq!(rounded.release, r);
        prop_assert!(rounded.window() <= w);
        prop_assert!(rounded.window() * 2 > w);
        prop_assert!(rounded.window().is_power_of_two());
    }

    /// `thin_to_feasible` output always verifies, for any γ.
    #[test]
    fn thinning_certificate_verifies(jobs in arb_jobs(), inv_gamma in 1u64..6) {
        let gamma = 1.0 / inv_gamma as f64;
        let thin = thin_to_feasible(Instance::new("p", jobs), gamma);
        prop_assert!(edf_feasible(&thin.jobs, inv_gamma));
    }

    /// Engine conservation laws under arbitrary ALOHA traffic: slots
    /// resolve exactly once, at most one delivery per job, deliveries land
    /// inside windows.
    #[test]
    fn engine_conservation(jobs in arb_jobs(), p in 1u32..50, seed in 0u64..1_000) {
        use contention_deadlines::baselines::FixedProbability;
        let instance = Instance::new("p", jobs);
        let mut engine = Engine::new(EngineConfig::default().with_trace(), seed);
        engine.add_jobs(&instance.jobs, FixedProbability::factory(f64::from(p) / 100.0));
        let report = engine.run();

        // Every slot accounted exactly once.
        prop_assert_eq!(report.counts.total(), report.slots_run);
        // Data successes counted consistently.
        prop_assert!(report.counts.data_success <= report.counts.success);
        // Deliveries strictly inside their windows.
        for (spec, outcome) in report.per_job() {
            if let Some(slot) = outcome.slot() {
                prop_assert!(spec.contains(slot), "{:?} delivered at {}", spec, slot);
            }
        }
        // Trace agrees with counters.
        let tally = contention_deadlines::sim::trace::tally(report.trace.as_ref().unwrap());
        prop_assert_eq!(tally.success, report.counts.success);
        prop_assert_eq!(tally.silent, report.counts.silent);
        prop_assert_eq!(tally.collision, report.counts.collision);
    }

    /// The engine is a pure function of (instance, seed).
    #[test]
    fn engine_determinism(jobs in arb_jobs(), seed in 0u64..500) {
        use contention_deadlines::baselines::Sawtooth;
        let instance = Instance::new("p", jobs);
        let run = || {
            let mut engine = Engine::new(EngineConfig::default(), seed);
            engine.add_jobs(&instance.jobs, Sawtooth::factory());
            let r = engine.run();
            (r.outcomes().to_vec(), r.counts, r.slots_run)
        };
        prop_assert_eq!(run(), run());
    }

    /// Wilson intervals always contain the point estimate and stay in
    /// [0, 1].
    #[test]
    fn wilson_interval_sane(hits in 0u64..1_000, extra in 0u64..1_000) {
        let p = Proportion::new(hits, hits + extra.max(1));
        let (lo, hi) = p.wilson95();
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= p.estimate() + 1e-12);
        prop_assert!(p.estimate() <= hi + 1e-12);
    }

    /// Summary merge is equivalent to sequential accumulation.
    #[test]
    fn summary_merge_correct(xs in prop::collection::vec(-1e6f64..1e6, 0..64), split in 0usize..64) {
        let split = split.min(xs.len());
        let full = Summary::from_iter(xs.iter().copied());
        let mut a = Summary::from_iter(xs[..split].iter().copied());
        let b = Summary::from_iter(xs[split..].iter().copied());
        a.merge(&b);
        prop_assert_eq!(a.n(), full.n());
        if full.n() > 0 {
            prop_assert!((a.mean() - full.mean()).abs() < 1e-6);
        }
        if full.n() > 1 {
            prop_assert!((a.variance() - full.variance()).abs() / full.variance().max(1.0) < 1e-6);
        }
    }
}

/// Pinned replay of the shrunk case in `properties.proptest-regressions`
/// (`jobs = [JobSpec { id: 0, release: 1, deadline: 2 }], p = 1, seed = 0`):
/// a single-slot window at an odd release is the tightest exercise of the
/// engine's activation / fast-forward / retirement boundaries. The property
/// is replayed deterministically (and across a seed sweep, so the job both
/// does and does not transmit) regardless of the proptest implementation in
/// use, which may not read the regression file.
#[test]
fn regression_engine_conservation_unit_window() {
    use contention_deadlines::baselines::FixedProbability;

    for seed in 0..256u64 {
        let jobs = vec![JobSpec::new(0, 1, 2)];
        let instance = Instance::new("regression", jobs);
        let mut engine = Engine::new(EngineConfig::default().with_trace(), seed);
        engine.add_jobs(&instance.jobs, FixedProbability::factory(0.01));
        let report = engine.run();

        assert_eq!(
            report.counts.total(),
            report.slots_run,
            "seed {seed}: every slot accounted exactly once"
        );
        assert!(report.counts.data_success <= report.counts.success);
        for (spec, outcome) in report.per_job() {
            if let Some(slot) = outcome.slot() {
                assert!(
                    spec.contains(slot),
                    "seed {seed}: {spec:?} delivered at {slot}"
                );
            }
        }
        let tally = contention_deadlines::sim::trace::tally(report.trace.as_ref().unwrap());
        assert_eq!(tally.success, report.counts.success);
        assert_eq!(tally.silent, report.counts.silent);
        assert_eq!(tally.collision, report.counts.collision);
    }
}

/// The w = 1 corner of the window-transform / feasibility theory, pinned
/// alongside the engine regression: single-slot windows must survive
/// trimming (identity), power-of-2 rounding (identity), and feasibility
/// checks (feasible alone at unit length, infeasible at length 2).
#[test]
fn regression_unit_window_transforms_and_feasibility() {
    let j = JobSpec::new(0, 1, 2);
    assert_eq!(j.window(), 1);
    assert!(j.contains(1));
    assert!(!j.contains(2));

    assert_eq!(trimmed_window(1, 2), (1, 2));
    assert_eq!(trim_virtual(1, 2), Some((1, 2)));
    let rounded = round_window_pow2(&j);
    assert_eq!((rounded.release, rounded.deadline), (1, 2));

    assert!(edf_feasible(&[j], 1));
    assert!(hall_feasible(&[j], 1));
    assert!(!edf_feasible(&[j], 2));
    assert!(!hall_feasible(&[j], 2));
    // Two unit-window jobs on the same slot cannot both be scheduled.
    let clash = [j, JobSpec::new(1, 1, 2)];
    assert!(!edf_feasible(&clash, 1));
    assert!(!hall_feasible(&clash, 1));
}
